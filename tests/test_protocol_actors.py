"""Tests for the actor-based distributed protocol engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, ProtocolError
from repro.estimators.registry import get_estimator
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.graph.views import LocalView
from repro.privacy.rng import spawn_rngs
from repro.protocol.actors import ActorProtocol, Channel, Message
from repro.protocol.session import ExecutionMode


@pytest.fixture(scope="module")
def graph():
    return random_bipartite(50, 65, 520, rng=61)


class TestLocalView:
    def test_from_graph(self, graph):
        view = LocalView.from_graph(graph, Layer.UPPER, 3)
        np.testing.assert_array_equal(view.neighbors, graph.neighbors(Layer.UPPER, 3))
        assert view.degree == graph.degree(Layer.UPPER, 3)
        assert view.domain_size == graph.num_lower

    def test_neighbors_frozen(self, graph):
        view = LocalView.from_graph(graph, Layer.UPPER, 3)
        with pytest.raises(ValueError):
            view.neighbors[0] = 99

    def test_contains(self, graph):
        view = LocalView.from_graph(graph, Layer.UPPER, 3)
        nbrs = graph.neighbors(Layer.UPPER, 3)
        assert view.contains(nbrs).all()

    def test_out_of_domain_rejected(self):
        with pytest.raises(GraphError):
            LocalView(Layer.UPPER, 0, 5, np.array([7]))

    def test_unsorted_rejected(self):
        with pytest.raises(GraphError):
            LocalView(Layer.UPPER, 0, 10, np.array([3, 1]))


class TestChannel:
    def test_traffic_accounting(self):
        channel = Channel()
        channel.send(Message("a", "curator", "noisy-edges", [1], 8))
        channel.send(Message("b", "curator", "estimate", 1.0, 8))
        channel.send(Message("a", "curator", "noisy-edges", [2], 16))
        assert channel.total_bytes() == 32
        assert channel.bytes_by_kind() == {"noisy-edges": 24, "estimate": 8}

    def test_negative_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            Channel().send(Message("a", "b", "x", None, -1))


class TestActorProtocol:
    @pytest.mark.parametrize("algorithm", ActorProtocol.SUPPORTED)
    def test_runs_and_respects_budget(self, graph, algorithm):
        protocol = ActorProtocol(graph, Layer.UPPER, 0, 1, 2.0, rng=5)
        value = protocol.run(algorithm)
        assert np.isfinite(value)
        assert protocol.ledger.max_spent() <= 2.0 + 1e-9
        assert protocol.channel.total_bytes() > 0

    def test_unsupported_algorithm(self, graph):
        protocol = ActorProtocol(graph, Layer.UPPER, 0, 1, 2.0, rng=5)
        with pytest.raises(ProtocolError):
            protocol.run("multir-ds")

    def test_identical_vertices_rejected(self, graph):
        with pytest.raises(ProtocolError):
            ActorProtocol(graph, Layer.UPPER, 1, 1, 2.0)

    def test_naive_download_free(self, graph):
        protocol = ActorProtocol(graph, Layer.UPPER, 0, 1, 2.0, rng=6)
        protocol.run("naive")
        kinds = protocol.channel.bytes_by_kind()
        assert "noisy-edges-download" not in kinds

    def test_multir_ss_has_download_leg(self, graph):
        protocol = ActorProtocol(graph, Layer.UPPER, 0, 1, 2.0, rng=7)
        protocol.run("multir-ss")
        kinds = protocol.channel.bytes_by_kind()
        assert kinds.get("noisy-edges-download", 0) > 0
        assert kinds.get("estimate", 0) == 8

    def test_vertex_cannot_use_own_list(self, graph):
        protocol = ActorProtocol(graph, Layer.UPPER, 0, 1, 2.0, rng=8)
        msg_u, _ = protocol._shared_rr_round(1.0)
        with pytest.raises(ProtocolError):
            protocol.vertex_u.send_single_source_estimate(msg_u, 1.0, 1.0)


class TestEngineEquivalence:
    """The actor engine and the session engine must agree in distribution."""

    TRIALS = 2500

    @pytest.mark.parametrize(
        "algorithm", ["naive", "oner", "multir-ss", "multir-ds-basic"]
    )
    def test_moments_match_session_engine(self, graph, algorithm):
        rngs = spawn_rngs(31, self.TRIALS * 2)
        actor_values = np.array(
            [
                ActorProtocol(graph, Layer.UPPER, 2, 7, 2.0, rng=rngs[t]).run(
                    algorithm
                )
                for t in range(self.TRIALS)
            ]
        )
        estimator = get_estimator(algorithm)
        session_values = np.array(
            [
                estimator.estimate(
                    graph, Layer.UPPER, 2, 7, 2.0, rng=rngs[self.TRIALS + t],
                    mode=ExecutionMode.SKETCH,
                ).value
                for t in range(self.TRIALS)
            ]
        )
        pooled_sd = np.sqrt(
            actor_values.var() / self.TRIALS + session_values.var() / self.TRIALS
        )
        assert abs(actor_values.mean() - session_values.mean()) < 5 * max(
            pooled_sd, 1e-9
        )
        ratio = actor_values.var(ddof=1) / max(session_values.var(ddof=1), 1e-12)
        assert 0.7 < ratio < 1.4

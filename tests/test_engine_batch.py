"""Tests for the vectorized batch query engine.

The engine must reproduce ``BatchOneRound``'s estimates distributionally
(same per-pair mean and variance — the RNG streams differ, so bit-for-bit
equality is not expected), stay unbiased on the sketch path, agree across
all counting backends, and keep the batch accounting within budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications.ingredients import batch_pair_ingredients
from repro.engine import (
    BatchQueryEngine,
    bernoulli_hits,
    bulk_randomized_response,
    pairwise_intersections,
    plan_workload,
)
from repro.errors import GraphError, PrivacyError, ProtocolError
from repro.estimators.batch import BatchOneRound
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.generators import random_bipartite
from repro.graph.sampling import QueryPair, sample_query_pairs
from repro.privacy.composition import QueryBudgetManager
from repro.privacy.mechanisms import RandomizedResponse
from repro.privacy.rng import spawn_rngs
from repro.protocol.session import ExecutionMode


@pytest.fixture(scope="module")
def graph():
    return random_bipartite(40, 60, 450, rng=77)


@pytest.fixture(scope="module")
def workload(graph):
    return sample_query_pairs(graph, Layer.UPPER, 12, rng=5)


@pytest.fixture(scope="module")
def truths(graph, workload):
    return np.array(
        [graph.count_common_neighbors(Layer.UPPER, p.a, p.b) for p in workload]
    )


class TestPlanner:
    def test_dedupes_vertices_and_maps_slots(self, graph):
        pairs = [
            QueryPair(Layer.UPPER, 3, 7),
            QueryPair(Layer.UPPER, 7, 3),
            QueryPair(Layer.UPPER, 3, 9),
        ]
        plan = plan_workload(graph, Layer.UPPER, pairs, 1.0)
        assert plan.vertices.tolist() == [3, 7, 9]
        assert plan.vertices[plan.ia].tolist() == [3, 7, 3]
        assert plan.vertices[plan.ib].tolist() == [7, 3, 9]

    def test_empty_workload_rejected(self, graph):
        with pytest.raises(ProtocolError):
            plan_workload(graph, Layer.UPPER, [], 1.0)

    def test_wrong_layer_rejected(self, graph):
        with pytest.raises(ProtocolError):
            plan_workload(graph, Layer.UPPER, [QueryPair(Layer.LOWER, 0, 1)], 1.0)

    def test_out_of_range_vertex_rejected(self, graph):
        with pytest.raises(GraphError):
            plan_workload(graph, Layer.UPPER, [QueryPair(Layer.UPPER, 0, 10_000)], 1.0)

    def test_needs_exactly_one_funding_source(self, graph):
        pairs = [QueryPair(Layer.UPPER, 0, 1)]
        manager = QueryBudgetManager(4.0, policy="uniform", num_queries=2)
        with pytest.raises(PrivacyError):
            plan_workload(graph, Layer.UPPER, pairs)
        with pytest.raises(PrivacyError):
            plan_workload(graph, Layer.UPPER, pairs, 1.0, budget=manager)

    def test_budget_manager_slices(self, graph):
        pairs = [QueryPair(Layer.UPPER, 0, 1)]
        manager = QueryBudgetManager(4.0, policy="uniform", num_queries=2)
        plan_a = plan_workload(graph, Layer.UPPER, pairs, budget=manager)
        plan_b = plan_workload(graph, Layer.UPPER, pairs, budget=manager)
        assert plan_a.epsilon == pytest.approx(2.0)
        assert plan_b.epsilon == pytest.approx(2.0)
        assert manager.remaining == pytest.approx(0.0)


class TestBulkRandomizedResponse:
    def test_rows_sorted_unique_in_domain(self, graph):
        vertices = np.arange(graph.num_upper)
        indptr, cols = bulk_randomized_response(graph, Layer.UPPER, vertices, 1.0, rng=3)
        assert indptr[-1] == cols.size
        for i in range(vertices.size):
            row = cols[indptr[i] : indptr[i + 1]]
            if row.size:
                assert (np.diff(row) > 0).all()
                assert row[0] >= 0 and row[-1] < graph.num_lower

    def test_matches_per_vertex_distribution(self, graph):
        """Row-size mean/variance agree with perturb_neighbor_list."""
        rr = RandomizedResponse(1.0)
        vertices = np.arange(20)
        bulk_rng, ref_rng = np.random.default_rng(1), np.random.default_rng(2)
        trials = 400
        bulk_sizes = np.empty((trials, vertices.size))
        ref_sizes = np.empty((trials, vertices.size))
        for t in range(trials):
            indptr, _ = bulk_randomized_response(
                graph, Layer.UPPER, vertices, 1.0, bulk_rng
            )
            bulk_sizes[t] = np.diff(indptr)
            ref_sizes[t] = [
                rr.perturb_neighbor_list(
                    graph.neighbors(Layer.UPPER, v), graph.num_lower, ref_rng
                ).size
                for v in vertices
            ]
        se = np.sqrt(
            bulk_sizes.var(axis=0) / trials + ref_sizes.var(axis=0) / trials
        )
        diff = np.abs(bulk_sizes.mean(axis=0) - ref_sizes.mean(axis=0))
        assert (diff < 5.0 * se + 1e-9).all()
        ratio = bulk_sizes.var(axis=0, ddof=1) / ref_sizes.var(axis=0, ddof=1)
        assert (0.6 < ratio).all() and (ratio < 1.7).all()

    def test_huge_epsilon_returns_true_rows(self, graph):
        vertices = np.arange(10)
        indptr, cols = bulk_randomized_response(graph, Layer.UPPER, vertices, 60.0, rng=1)
        for i, v in enumerate(vertices):
            np.testing.assert_array_equal(
                cols[indptr[i] : indptr[i + 1]], graph.neighbors(Layer.UPPER, v)
            )

    def test_empty_vertex_list(self, graph):
        indptr, cols = bulk_randomized_response(
            graph, Layer.UPPER, np.empty(0, dtype=np.int64), 1.0, rng=0
        )
        assert indptr.tolist() == [0] and cols.size == 0

    def test_out_of_range_vertex(self, graph):
        with pytest.raises(GraphError):
            bulk_randomized_response(graph, Layer.UPPER, np.array([999]), 1.0, rng=0)


class TestBernoulliHits:
    def test_moments(self):
        rng = np.random.default_rng(0)
        p, cells, trials = 0.2, 500, 800
        counts = np.array([bernoulli_hits(cells, p, rng).size for _ in range(trials)])
        assert counts.mean() == pytest.approx(cells * p, abs=5 * np.sqrt(cells * p / trials))
        occupancy = np.zeros(cells)
        for _ in range(200):
            occupancy[bernoulli_hits(cells, p, rng)] += 1
        assert occupancy.mean() == pytest.approx(200 * p, rel=0.1)

    def test_positions_sorted_distinct(self):
        rng = np.random.default_rng(1)
        hits = bernoulli_hits(10_000, 0.4, rng)
        assert (np.diff(hits) > 0).all()
        assert hits[0] >= 0 and hits[-1] < 10_000

    def test_tiny_p_and_empty(self):
        rng = np.random.default_rng(2)
        assert bernoulli_hits(0, 0.3, rng).size == 0
        assert bernoulli_hits(100, 0.0, rng).size == 0
        assert bernoulli_hits(1000, 1e-21, rng).size in (0, 1, 2)


class TestPairwiseBackends:
    @pytest.fixture(scope="class")
    def csr_and_pairs(self, graph):
        pairs = sample_query_pairs(graph, Layer.UPPER, 40, rng=9)
        plan = plan_workload(graph, Layer.UPPER, pairs, 2.0)
        indptr, cols = bulk_randomized_response(
            graph, Layer.UPPER, plan.vertices, 2.0, np.random.default_rng(11)
        )
        return indptr, cols, plan

    @pytest.mark.parametrize("backend", ["bitset", "sparse", "merge"])
    def test_backends_agree_with_reference(self, csr_and_pairs, graph, backend):
        indptr, cols, plan = csr_and_pairs
        got = pairwise_intersections(
            indptr, cols, plan.ia, plan.ib, graph.num_lower, backend=backend
        )
        expected = [
            np.intersect1d(
                cols[indptr[a] : indptr[a + 1]],
                cols[indptr[b] : indptr[b + 1]],
                assume_unique=True,
            ).size
            for a, b in zip(plan.ia, plan.ib)
        ]
        assert got.tolist() == expected

    def test_empty_rows(self):
        indptr = np.array([0, 0, 2], dtype=np.int64)
        cols = np.array([1, 3], dtype=np.int64)
        for backend in ("bitset", "sparse", "merge"):
            got = pairwise_intersections(
                indptr, cols, np.array([0]), np.array([1]), 5, backend=backend
            )
            assert got.tolist() == [0]


class TestEngineInterface:
    def test_result_shape_and_lookup(self, graph, workload):
        result = BatchQueryEngine().estimate_pairs(graph, Layer.UPPER, workload, 2.0, rng=1)
        assert result.values.shape == (len(workload),)
        assert result.pairs == tuple(workload)
        assert result.value(workload[3]) == result.values[3]
        with pytest.raises(ProtocolError):
            result.value(QueryPair(Layer.UPPER, 38, 39))

    def test_deterministic(self, graph, workload):
        a = BatchQueryEngine().estimate_pairs(graph, Layer.UPPER, workload, 2.0, rng=3)
        b = BatchQueryEngine().estimate_pairs(graph, Layer.UPPER, workload, 2.0, rng=3)
        np.testing.assert_array_equal(a.values, b.values)

    def test_auto_mode_selection(self, graph, workload):
        small = BatchQueryEngine().estimate_pairs(graph, Layer.UPPER, workload, 2.0, rng=1)
        assert small.mode is ExecutionMode.MATERIALIZE
        big = random_bipartite(50, 30_000, 2000, rng=4)
        pairs = sample_query_pairs(big, Layer.UPPER, 5, rng=5)
        result = BatchQueryEngine().estimate_pairs(big, Layer.UPPER, pairs, 2.0, rng=6)
        assert result.mode is ExecutionMode.SKETCH
        assert result.details["backend"] == "sketch"

    def test_each_vertex_charged_once(self, graph):
        pairs = [QueryPair(Layer.UPPER, 0, other) for other in (1, 2, 3, 4, 5, 6)]
        result = BatchQueryEngine().estimate_pairs(graph, Layer.UPPER, pairs, 1.5, rng=2)
        assert result.max_epsilon_spent == pytest.approx(1.5)
        assert result.num_query_vertices == 7

    def test_budget_manager_funding(self, graph, workload):
        manager = QueryBudgetManager(6.0, policy="uniform", num_queries=3)
        engine = BatchQueryEngine()
        for _ in range(3):
            result = engine.estimate_pairs(
                graph, Layer.UPPER, workload, budget=manager, rng=1
            )
            assert result.epsilon == pytest.approx(2.0)
            assert result.max_epsilon_spent <= 2.0 + 1e-9
        from repro.errors import BudgetExceededError

        with pytest.raises(BudgetExceededError):
            engine.estimate_pairs(graph, Layer.UPPER, workload, budget=manager, rng=1)

    @pytest.mark.parametrize(
        "mode", [ExecutionMode.MATERIALIZE, ExecutionMode.SKETCH]
    )
    def test_upload_accounting(self, graph, workload, mode):
        result = BatchQueryEngine(mode=mode).estimate_pairs(
            graph, Layer.UPPER, workload, 2.0, rng=8
        )
        assert result.upload_bytes > 0
        assert result.mode is mode


class TestEngineStatistics:
    def test_huge_epsilon_recovers_truth(self, graph, workload, truths):
        result = BatchQueryEngine().estimate_pairs(graph, Layer.UPPER, workload, 50.0, rng=6)
        np.testing.assert_allclose(result.values, truths, atol=1e-6)

    @pytest.mark.parametrize(
        "mode", [ExecutionMode.MATERIALIZE, ExecutionMode.SKETCH]
    )
    def test_unbiased(self, graph, workload, truths, mode):
        """Mean/variance tolerance harness: the estimator mean must sit
        within 5 standard errors of the truth for every pair."""
        rngs = spawn_rngs(9 if mode is ExecutionMode.MATERIALIZE else 10, 900)
        sums = np.zeros(len(workload))
        squares = np.zeros(len(workload))
        engine = BatchQueryEngine(mode=mode)
        for r in rngs:
            values = engine.estimate_pairs(graph, Layer.UPPER, workload, 2.0, rng=r).values
            sums += values
            squares += values**2
        means = sums / len(rngs)
        variances = squares / len(rngs) - means**2
        se = np.sqrt(variances / len(rngs))
        assert (np.abs(means - truths) < 5 * se + 1e-9).all()

    def test_matches_batch_oner_distribution(self, graph, workload, truths):
        """The engine and BatchOneRound draw from the same distribution:
        per-pair means within pooled standard error, variances within a
        ratio band."""
        trials = 700
        engine = BatchQueryEngine(mode=ExecutionMode.MATERIALIZE)
        reference = BatchOneRound()
        e_rngs = spawn_rngs(21, trials)
        r_rngs = spawn_rngs(22, trials)
        e_values = np.empty((trials, len(workload)))
        r_values = np.empty((trials, len(workload)))
        for t in range(trials):
            e_values[t] = engine.estimate_pairs(
                graph, Layer.UPPER, workload, 1.5, rng=e_rngs[t]
            ).values
            r_values[t] = reference.estimate_pairs(
                graph, Layer.UPPER, workload, 1.5, rng=r_rngs[t]
            ).values
        pooled_se = np.sqrt(
            e_values.var(axis=0) / trials + r_values.var(axis=0) / trials
        )
        mean_gap = np.abs(e_values.mean(axis=0) - r_values.mean(axis=0))
        assert (mean_gap < 5.0 * pooled_se + 1e-9).all()
        ratio = e_values.var(axis=0, ddof=1) / r_values.var(axis=0, ddof=1)
        assert (0.6 < ratio).all() and (ratio < 1.7).all()

    def test_shared_vertex_errors_correlate_in_materialize(self):
        """Materialize mode reuses each vertex's noisy list across pairs,
        so errors of pairs sharing a vertex correlate when the other
        endpoints overlap (covariance = Var(phi) * C2(b, c))."""
        edges = [(0, j) for j in range(20)]
        edges += [(1, j) for j in range(5, 45)]
        edges += [(2, j) for j in range(5, 45)]
        planted = BipartiteGraph(3, 60, edges)
        pairs = [QueryPair(Layer.UPPER, 0, 1), QueryPair(Layer.UPPER, 0, 2)]
        engine = BatchQueryEngine(mode=ExecutionMode.MATERIALIZE)
        rngs = spawn_rngs(13, 800)
        errors = np.empty((len(rngs), 2))
        for i, r in enumerate(rngs):
            values = engine.estimate_pairs(planted, Layer.UPPER, pairs, 1.0, rng=r).values
            errors[i, 0] = values[0] - planted.count_common_neighbors(Layer.UPPER, 0, 1)
            errors[i, 1] = values[1] - planted.count_common_neighbors(Layer.UPPER, 0, 2)
        assert np.corrcoef(errors.T)[0, 1] > 0.15


class TestBatchIngredients:
    def test_per_vertex_spend_is_epsilon(self, graph, workload):
        batch = batch_pair_ingredients(graph, Layer.UPPER, workload, 2.0, rng=3)
        assert batch.max_epsilon_spent == pytest.approx(2.0)
        assert batch.epsilon_degrees + batch.epsilon_c2 == pytest.approx(2.0)
        assert batch.c2_estimates.shape == (len(workload),)
        assert batch.upload_bytes > 0

    def test_degrees_track_truth_at_high_budget(self, graph, workload):
        batch = batch_pair_ingredients(graph, Layer.UPPER, workload, 400.0, rng=4)
        true_a = [graph.degree(Layer.UPPER, p.a) for p in workload]
        np.testing.assert_allclose(batch.noisy_degrees_a, true_a, atol=1.0)

    def test_invalid_degree_fraction(self, graph, workload):
        with pytest.raises(PrivacyError):
            batch_pair_ingredients(graph, Layer.UPPER, workload, 2.0, degree_fraction=1.5)

"""Tests for the privacy-budget optimizer (paper §4.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.loss import double_source_variance, single_source_variance
from repro.analysis.optimizer import (
    golden_section,
    joint_newton,
    newton_minimize_scalar,
    optimal_alpha,
    optimize_double_source,
    optimize_single_source,
    profile_loss,
)
from repro.errors import OptimizationError, PrivacyError


class TestOptimalAlpha:
    def test_matches_grid_search(self):
        eps1, eps2 = 0.9, 1.1
        for du, dw in [(5, 10), (5, 100), (80, 3), (10, 10)]:
            alphas = np.linspace(0, 1, 20001)
            losses = [
                double_source_variance(eps1, eps2, a, du, dw) for a in alphas
            ]
            best_grid = alphas[int(np.argmin(losses))]
            assert optimal_alpha(eps1, eps2, du, dw) == pytest.approx(
                best_grid, abs=1e-3
            )

    def test_balanced_degrees_give_half(self):
        assert optimal_alpha(1.0, 1.0, 20, 20) == pytest.approx(0.5)

    def test_low_degree_u_gets_more_weight(self):
        assert optimal_alpha(1.0, 1.0, 2, 200) > 0.5

    def test_low_degree_w_gets_more_weight(self):
        assert optimal_alpha(1.0, 1.0, 200, 2) < 0.5

    def test_alpha_in_unit_interval(self):
        for du, dw in [(1, 10_000), (10_000, 1), (1, 1)]:
            assert 0.0 <= optimal_alpha(1.0, 1.0, du, dw) <= 1.0


class TestProfileLoss:
    def test_equals_loss_at_optimal_alpha(self):
        eps_rem, du, dw = 2.0, 7, 31
        for eps1 in (0.4, 1.0, 1.6):
            eps2 = eps_rem - eps1
            alpha = optimal_alpha(eps1, eps2, du, dw)
            direct = double_source_variance(eps1, eps2, alpha, du, dw)
            assert profile_loss(eps1, eps_rem, du, dw) == pytest.approx(direct)

    def test_rejects_boundary(self):
        with pytest.raises(PrivacyError):
            profile_loss(0.0, 2.0, 5, 5)
        with pytest.raises(PrivacyError):
            profile_loss(2.0, 2.0, 5, 5)


class TestScalarMinimizers:
    def test_golden_section_quadratic(self):
        x = golden_section(lambda t: (t - 0.7) ** 2, 0.0, 2.0)
        assert x == pytest.approx(0.7, abs=1e-6)

    def test_golden_section_invalid_bracket(self):
        with pytest.raises(OptimizationError):
            golden_section(lambda t: t, 1.0, 0.0)

    def test_newton_quadratic(self):
        x = newton_minimize_scalar(lambda t: 3 * (t - 1.2) ** 2 + 5, 0.0, 3.0)
        assert x == pytest.approx(1.2, abs=1e-6)

    def test_newton_quartic(self):
        x = newton_minimize_scalar(lambda t: (t - 0.5) ** 4 + t, 0.0, 1.0)
        grid = np.linspace(1e-4, 1 - 1e-4, 40_001)
        best = grid[np.argmin((grid - 0.5) ** 4 + grid)]
        assert x == pytest.approx(best, abs=1e-3)

    def test_newton_respects_bracket(self):
        # Minimum outside the bracket: must clamp to the boundary region.
        x = newton_minimize_scalar(lambda t: (t - 10) ** 2, 0.0, 2.0)
        assert x == pytest.approx(2.0, abs=1e-3)

    def test_newton_invalid_bracket(self):
        with pytest.raises(OptimizationError):
            newton_minimize_scalar(lambda t: t * t, 2.0, 1.0)


class TestOptimizeDoubleSource:
    @pytest.mark.parametrize(
        "du,dw", [(5, 10), (5, 100), (100, 5), (50, 50), (1, 1), (3, 3000)]
    )
    def test_matches_dense_grid(self, du, dw):
        epsilon, eps0 = 2.0, 0.1
        alloc = optimize_double_source(epsilon, du, dw, eps0)
        eps_rem = epsilon - eps0
        grid = np.linspace(0.05 * eps_rem, 0.95 * eps_rem, 4001)
        grid_losses = [profile_loss(float(e), eps_rem, du, dw) for e in grid]
        assert alloc.predicted_loss <= min(grid_losses) * (1 + 1e-6)

    def test_budget_sums_to_epsilon(self):
        alloc = optimize_double_source(2.0, 8, 30, eps0=0.1)
        assert alloc.total == pytest.approx(2.0)

    def test_theorem9_never_worse_than_single_sources(self):
        """min loss of f* <= min loss of both single-source estimators."""
        rng = np.random.default_rng(5)
        for _ in range(25):
            du = int(rng.integers(1, 500))
            dw = int(rng.integers(1, 500))
            epsilon = float(rng.uniform(0.5, 4.0))
            alloc = optimize_double_source(epsilon, du, dw, eps0=0.0)
            ss_u = single_source_variance(epsilon / 2, epsilon / 2, du)
            ss_w = single_source_variance(epsilon / 2, epsilon / 2, dw)
            assert alloc.predicted_loss <= min(ss_u, ss_w) + 1e-9

    def test_imbalanced_pair_downweights_heavy_vertex(self):
        alloc = optimize_double_source(2.0, 500, 2, eps0=0.1)
        assert alloc.alpha < 0.3  # most weight on f_w (the light vertex)

    def test_large_degrees_shift_budget_to_rr(self):
        """Paper §4.2: large degrees ask for more noisy-graph budget."""
        small = optimize_double_source(2.0, 3, 3, eps0=0.0)
        large = optimize_double_source(2.0, 300, 300, eps0=0.0)
        assert large.eps1 > small.eps1

    def test_degree_round_consuming_budget_raises(self):
        with pytest.raises(PrivacyError):
            optimize_double_source(1.0, 5, 5, eps0=1.0)

    def test_nonpositive_degrees_clamped(self):
        alloc = optimize_double_source(2.0, -3.0, 0.0, eps0=0.1)
        assert np.isfinite(alloc.predicted_loss)
        assert alloc.alpha == pytest.approx(0.5)


class TestOptimizeSingleSource:
    def test_matches_grid(self):
        epsilon, du = 2.0, 40
        alloc = optimize_single_source(epsilon, du, eps0=0.0)
        grid = np.linspace(0.05 * epsilon, 0.95 * epsilon, 4001)
        losses = [
            single_source_variance(float(e), epsilon - float(e), du) for e in grid
        ]
        assert alloc.predicted_loss <= min(losses) * (1 + 1e-6)

    def test_alpha_is_one(self):
        assert optimize_single_source(2.0, 10).alpha == 1.0

    def test_beats_even_split_for_large_degree(self):
        """The paper notes optimization pays off when deg(u) is large."""
        epsilon, du = 2.0, 500
        alloc = optimize_single_source(epsilon, du)
        even = single_source_variance(epsilon / 2, epsilon / 2, du)
        assert alloc.predicted_loss < even


class TestJointNewton:
    @pytest.mark.parametrize("du,dw", [(5, 10), (5, 100), (200, 7)])
    def test_agrees_with_profile_method(self, du, dw):
        profile = optimize_double_source(2.0, du, dw, eps0=0.1)
        joint = joint_newton(2.0, du, dw, eps0=0.1)
        assert joint.predicted_loss == pytest.approx(
            profile.predicted_loss, rel=1e-3
        )

    def test_budget_constraint(self):
        joint = joint_newton(2.0, 5, 50, eps0=0.1)
        assert joint.total == pytest.approx(2.0)

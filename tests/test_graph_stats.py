"""Tests for the graph statistics module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.generators import chung_lu_bipartite, power_law_degrees
from repro.graph.stats import (
    degree_ccdf,
    degree_histogram,
    gini_coefficient,
    hill_tail_exponent,
    summarize_graph,
)


class TestDegreeHistogram:
    def test_counts_sum_to_layer_size(self, small_graph):
        values, counts = degree_histogram(small_graph, Layer.UPPER)
        assert counts.sum() == small_graph.num_upper

    def test_values_sorted_unique(self, small_graph):
        values, _ = degree_histogram(small_graph, Layer.UPPER)
        assert (np.diff(values) > 0).all()

    def test_empty_layer(self):
        values, counts = degree_histogram(BipartiteGraph(0, 3), Layer.UPPER)
        assert values.size == 0
        assert counts.size == 0

    def test_known_graph(self, tiny_graph):
        values, counts = degree_histogram(tiny_graph, Layer.UPPER)
        # degrees: 3, 4, 2
        assert dict(zip(values.tolist(), counts.tolist())) == {2: 1, 3: 1, 4: 1}


class TestCcdf:
    def test_starts_at_one(self, small_graph):
        values, ccdf = degree_ccdf(small_graph, Layer.UPPER)
        assert ccdf[0] == pytest.approx(1.0)

    def test_monotone_decreasing(self, small_graph):
        _, ccdf = degree_ccdf(small_graph, Layer.UPPER)
        assert (np.diff(ccdf) <= 1e-12).all()

    def test_last_value_is_max_degree_fraction(self, tiny_graph):
        values, ccdf = degree_ccdf(tiny_graph, Layer.UPPER)
        assert values[-1] == 4
        assert ccdf[-1] == pytest.approx(1 / 3)


class TestGini:
    def test_equal_values_zero(self):
        assert gini_coefficient(np.full(100, 7.0)) == pytest.approx(0.0, abs=1e-9)

    def test_single_owner_near_one(self):
        values = np.zeros(1000)
        values[0] = 100.0
        assert gini_coefficient(values) == pytest.approx(1.0, abs=0.01)

    def test_known_value(self):
        # For [0, 1]: G = 1/2.
        assert gini_coefficient(np.array([0.0, 1.0])) == pytest.approx(0.5)

    def test_scale_invariant(self, rng):
        values = rng.random(500)
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient(values * 42.0)
        )

    def test_all_zero(self):
        assert gini_coefficient(np.zeros(10)) == 0.0

    def test_empty_raises(self):
        with pytest.raises(GraphError):
            gini_coefficient(np.array([]))

    def test_negative_raises(self):
        with pytest.raises(GraphError):
            gini_coefficient(np.array([-1.0, 2.0]))


class TestHill:
    def test_recovers_pareto_exponent(self):
        rng = np.random.default_rng(0)
        alpha = 2.5
        # Continuous Pareto with P(X >= x) = x^(1-alpha) for x >= 1.
        samples = (1.0 - rng.random(200_000)) ** (-1.0 / (alpha - 1.0))
        est = hill_tail_exponent(samples, tail_fraction=0.05)
        assert est == pytest.approx(alpha, abs=0.15)

    def test_power_law_degrees_look_heavy(self):
        degrees = power_law_degrees(50_000, exponent=2.3, d_min=1, d_max=5000, rng=1)
        est = hill_tail_exponent(degrees.astype(float), tail_fraction=0.02)
        assert 1.5 < est < 3.5

    def test_too_few_samples(self):
        with pytest.raises(GraphError):
            hill_tail_exponent(np.array([1.0, 2.0, 3.0]))

    def test_degenerate_tail(self):
        with pytest.raises(GraphError):
            hill_tail_exponent(np.full(100, 5.0))

    def test_invalid_fraction(self):
        with pytest.raises(GraphError):
            hill_tail_exponent(np.arange(1.0, 100.0), tail_fraction=0.0)


class TestSummary:
    def test_fields(self, tiny_graph):
        s = summarize_graph(tiny_graph)
        assert s.num_upper == 3
        assert s.num_lower == 8
        assert s.num_edges == 9
        assert s.upper.max_degree == 4
        assert s.upper.mean_degree == pytest.approx(3.0)

    def test_empty_graph(self):
        s = summarize_graph(BipartiteGraph(0, 0))
        assert s.upper.size == 0
        assert s.lower.gini == 0.0

    def test_skewed_graph_has_high_gini(self):
        w_u = power_law_degrees(500, exponent=2.0, d_min=1, d_max=300, rng=2)
        g = chung_lu_bipartite(w_u.astype(float), np.ones(400), 2500, rng=3)
        s = summarize_graph(g)
        assert s.upper.gini > 0.3

"""Registry-wide estimator contract suite.

Every algorithm in :mod:`repro.estimators.registry` — including any added
later — is exercised under every execution mode it declares, against one
shared contract:

* **registration** — every concrete :class:`CommonNeighborEstimator`
  subclass in the package must be registered under its ``name`` (a new
  estimator that forgets to register fails the suite);
* **determinism** — a fixed seed reproduces the estimate bit-for-bit;
* **budget** — the transcript's realized ``max_epsilon_spent`` matches the
  class's ``declared_epsilon_cost`` × requested ε;
* **serialization** — results round-trip through
  ``to_dict``/``json``/``from_dict`` losslessly;
* **mode discipline** — unsupported execution modes are rejected, never
  silently coerced;
* **unbiasedness** — estimators declaring ``unbiased = True`` match the
  exact count in expectation once the noise is turned nearly off.

The suite discovers its parameter grid from the registry at collection
time, so registering a new estimator automatically subjects it to every
check below.
"""

from __future__ import annotations

import importlib
import inspect
import json
import pkgutil

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.estimators
from repro.errors import ProtocolError
from repro.estimators.base import CommonNeighborEstimator, EstimateResult
from repro.estimators.registry import ESTIMATOR_FACTORIES, get_estimator
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.protocol.session import ExecutionMode

pytestmark = pytest.mark.timeout(120)

# A query pair with a non-trivial exact count on the shared small_graph
# fixture (random_bipartite(60, 50, 500, rng=7)): C2(3, 9) = 4.
PAIR = (3, 9)

ALL_NAMES = sorted(ESTIMATOR_FACTORIES)
NAME_MODE = [
    pytest.param(name, mode, id=f"{name}-{mode.value}")
    for name in ALL_NAMES
    for mode in get_estimator(name).supported_modes
]
UNBIASED_PRIVATE = [
    name
    for name in ALL_NAMES
    if get_estimator(name).unbiased and get_estimator(name).declared_epsilon_cost > 0
]


def _concrete_estimator_classes() -> dict[str, type[CommonNeighborEstimator]]:
    """Import every module under repro.estimators and collect concrete classes.

    A class is part of the registry contract when it subclasses
    :class:`CommonNeighborEstimator` and overrides ``name`` (shared bases
    keep the sentinel ``"abstract"``).
    """
    classes: dict[str, type[CommonNeighborEstimator]] = {}
    for info in pkgutil.iter_modules(repro.estimators.__path__):
        module = importlib.import_module(f"repro.estimators.{info.name}")
        for _, obj in inspect.getmembers(module, inspect.isclass):
            if (
                issubclass(obj, CommonNeighborEstimator)
                and obj.name != "abstract"
                and not inspect.isabstract(obj)
            ):
                classes[obj.name] = obj
    return classes


def test_every_concrete_estimator_is_registered():
    classes = _concrete_estimator_classes()
    missing = set(classes) - set(ESTIMATOR_FACTORIES)
    assert not missing, f"estimators defined but not registered: {sorted(missing)}"
    stale = set(ESTIMATOR_FACTORIES) - set(classes)
    assert not stale, f"registry names without a concrete class: {sorted(stale)}"
    for name, cls in classes.items():
        assert isinstance(get_estimator(name), cls)


def test_sketch_view_estimators_are_registered():
    # The sublinear-memory release path must stay queryable by name.
    assert {"bloom-view", "voc-view", "hll-view"} <= set(ESTIMATOR_FACTORIES)


def test_registry_names_match_class_names():
    for name, factory in ESTIMATOR_FACTORIES.items():
        assert factory().name == name


@pytest.mark.parametrize("name, mode", NAME_MODE)
def test_supported_mode_runs_and_is_deterministic(small_graph, name, mode):
    est = get_estimator(name)
    u, w = PAIR
    results = [
        est.estimate(
            small_graph, Layer.UPPER, u, w, 2.0,
            rng=np.random.default_rng(1234), mode=mode,
        )
        for _ in range(2)
    ]
    assert np.isfinite(results[0].value)
    assert results[0].value == results[1].value
    assert results[0].to_dict() == results[1].to_dict()


@pytest.mark.parametrize("name, mode", NAME_MODE)
def test_budget_debit_matches_declared_cost(small_graph, name, mode):
    est = get_estimator(name)
    epsilon = 1.7
    result = est.estimate(
        small_graph, Layer.UPPER, *PAIR, epsilon,
        rng=np.random.default_rng(9), mode=mode,
    )
    spent = result.transcript.max_epsilon_spent if result.transcript else 0.0
    assert spent == pytest.approx(est.declared_epsilon_cost * epsilon, abs=1e-9)


@pytest.mark.parametrize("name, mode", NAME_MODE)
def test_result_serialization_round_trip(small_graph, name, mode):
    est = get_estimator(name)
    result = est.estimate(
        small_graph, Layer.UPPER, *PAIR, 2.0,
        rng=np.random.default_rng(77), mode=mode,
    )
    payload = result.to_dict()
    wire = json.loads(json.dumps(payload))  # must survive real JSON
    rebuilt = EstimateResult.from_dict(wire)
    assert rebuilt.value == result.value
    assert rebuilt.algorithm == result.algorithm
    assert rebuilt.layer is result.layer
    assert (rebuilt.u, rebuilt.w) == (result.u, result.w)
    assert rebuilt.to_dict() == payload
    if result.transcript is not None:
        assert rebuilt.transcript.mode is result.transcript.mode
        assert rebuilt.transcript.rounds == result.transcript.rounds
        assert rebuilt.transcript.upload_bytes == result.transcript.upload_bytes


@pytest.mark.parametrize("name", ALL_NAMES)
def test_unsupported_modes_are_rejected(small_graph, name):
    est = get_estimator(name)
    unsupported = [m for m in ExecutionMode if m not in est.supported_modes]
    assert unsupported, f"{name} claims to support every mode"
    for mode in unsupported:
        with pytest.raises((ProtocolError, ValueError)):
            est.estimate(small_graph, Layer.UPPER, *PAIR, 2.0, mode=mode)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_identical_vertices_are_rejected(small_graph, name):
    with pytest.raises((ProtocolError, ValueError)):
        get_estimator(name).estimate(small_graph, Layer.UPPER, 3, 3, 2.0)


@pytest.mark.parametrize("name", UNBIASED_PRIVATE)
def test_unbiased_estimators_match_exact_at_near_zero_noise(small_graph, name):
    """With ε = 50 the noise is nearly off: E[f] must be the exact C2."""
    u, w = PAIR
    true = get_estimator("exact").estimate(small_graph, Layer.UPPER, u, w).value
    est = get_estimator(name)
    values = np.array([
        est.estimate(
            small_graph, Layer.UPPER, u, w, 50.0,
            rng=np.random.default_rng(1000 + i),
        ).value
        for i in range(200)
    ])
    se = values.std(ddof=1) / np.sqrt(values.size)
    # 5 standard errors plus a small absolute floor for the exact-replay
    # estimators whose sample variance is zero at this ε.
    assert abs(values.mean() - true) <= 5.0 * se + 0.05


@pytest.mark.parametrize("name", ALL_NAMES)
def test_declared_contract_classvars(name):
    est = get_estimator(name)
    assert est.supported_modes, f"{name} declares no supported modes"
    assert all(isinstance(m, ExecutionMode) for m in est.supported_modes)
    assert est.declared_epsilon_cost >= 0.0
    assert isinstance(est.unbiased, bool)


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(ALL_NAMES),
    epsilon=st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_contract_holds_for_arbitrary_budgets(name, epsilon, seed):
    """Determinism + serialization + budget, property-style over (ε, seed)."""
    graph = random_bipartite(30, 24, 180, rng=3)
    est = get_estimator(name)
    run = lambda: est.estimate(  # noqa: E731
        graph, Layer.UPPER, 1, 4, epsilon, rng=np.random.default_rng(seed)
    )
    first, second = run(), run()
    assert first.value == second.value
    assert EstimateResult.from_dict(
        json.loads(json.dumps(first.to_dict()))
    ).to_dict() == first.to_dict()
    spent = first.transcript.max_epsilon_spent if first.transcript else 0.0
    assert spent <= est.declared_epsilon_cost * epsilon + 1e-9

"""Tests for the dataset registry, scaling, synthesis, and cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.cache import clear_memory_cache, load_dataset
from repro.datasets.registry import (
    PAPER_DATASETS,
    dataset_keys,
    default_max_edges,
    get_spec,
    scaled_spec,
)
from repro.datasets.synthesis import synthesize
from repro.errors import DatasetError
from repro.graph.bipartite import Layer


class TestRegistry:
    def test_fifteen_datasets(self):
        assert len(PAPER_DATASETS) == 15

    def test_keys_order_starts_with_rm(self):
        assert dataset_keys()[0] == "RM"
        assert dataset_keys()[-1] == "OG"

    def test_lookup_by_key_and_name(self):
        assert get_spec("RM").name == "rmwiki"
        assert get_spec("rmwiki").key == "RM"

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            get_spec("nonexistent")

    def test_paper_table2_spot_checks(self):
        rm = get_spec("RM")
        assert (rm.paper_edges, rm.paper_upper, rm.paper_lower) == (58_000, 1_200, 8_100)
        og = get_spec("OG")
        assert og.paper_edges == 327_000_000
        nx = get_spec("NX")
        assert nx.paper_upper == 480_200

    def test_average_degrees(self):
        ml = get_spec("ML")
        assert ml.paper_average_upper_degree == pytest.approx(10_000_000 / 69_900)

    def test_unique_seeds(self):
        seeds = [s.seed for s in PAPER_DATASETS.values()]
        assert len(set(seeds)) == len(seeds)


class TestScaling:
    def test_small_dataset_not_scaled(self):
        scaled = scaled_spec(get_spec("RM"), max_edges=100_000)
        assert scaled.vertex_fraction == 1.0
        assert scaled.num_edges == 58_000
        assert scaled.n_upper == 1_200

    def test_large_dataset_scaled_quadratically(self):
        spec = get_spec("NX")
        scaled = scaled_spec(spec, max_edges=100_000)
        s = scaled.vertex_fraction
        assert s == pytest.approx((100_000 / spec.paper_edges) ** 0.5)
        assert scaled.num_edges <= 100_000 + 1

    def test_density_preserved(self):
        for key in ("NX", "OG", "ML"):
            spec = get_spec(key)
            scaled = scaled_spec(spec, max_edges=100_000)
            paper_density = spec.paper_edges / (spec.paper_upper * spec.paper_lower)
            synth_density = scaled.num_edges / (scaled.n_upper * scaled.n_lower)
            assert synth_density == pytest.approx(paper_density, rel=0.15)

    def test_invalid_max_edges(self):
        with pytest.raises(DatasetError):
            scaled_spec(get_spec("RM"), max_edges=0)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_EDGES", "12345")
        assert default_max_edges() == 12345

    def test_env_override_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_EDGES", "abc")
        with pytest.raises(DatasetError):
            default_max_edges()

    def test_env_override_negative(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_EDGES", "-5")
        with pytest.raises(DatasetError):
            default_max_edges()


class TestSynthesis:
    def test_sizes_match_scaled_spec(self):
        graph = synthesize("RM", max_edges=30_000)
        scaled = scaled_spec(get_spec("RM"), 30_000)
        assert graph.num_upper == scaled.n_upper
        assert graph.num_lower == scaled.n_lower
        assert graph.num_edges == scaled.num_edges

    def test_deterministic(self):
        a = synthesize("AC", max_edges=20_000)
        b = synthesize("AC", max_edges=20_000)
        assert a == b

    def test_different_datasets_differ(self):
        a = synthesize("RM", max_edges=20_000)
        b = synthesize("DA", max_edges=20_000)
        assert a != b

    def test_heavy_tailed_upper_degrees(self):
        graph = synthesize("RM", max_edges=58_000)
        degrees = graph.degrees(Layer.UPPER)
        # Skew: the top vertex should far exceed the median, as in rmwiki.
        assert degrees.max() > 8 * np.median(degrees[degrees > 0])

    def test_no_isolated_explosion(self):
        graph = synthesize("RM", max_edges=58_000)
        isolated = (graph.degrees(Layer.UPPER) == 0).mean()
        assert isolated < 0.4


class TestCache:
    def test_disk_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        first = load_dataset("RM", max_edges=20_000)
        files = list(tmp_path.glob("RM_*.npz"))
        assert len(files) == 1
        clear_memory_cache()
        second = load_dataset("RM", max_edges=20_000)
        assert first == second

    def test_memory_cache_returns_same_object(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        a = load_dataset("RM", max_edges=20_000)
        b = load_dataset("RM", max_edges=20_000)
        assert a is b

    def test_no_disk_mode(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        load_dataset("AC", max_edges=20_000, use_disk=False)
        assert list(tmp_path.glob("AC_*.npz")) == []

    def test_corrupt_cache_entry_regenerates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        first = load_dataset("RM", max_edges=20_000)
        files = list(tmp_path.glob("RM_*.npz"))
        files[0].write_bytes(b"garbage")
        clear_memory_cache()
        second = load_dataset("RM", max_edges=20_000)
        assert first == second

    def test_different_scales_cached_separately(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        small = load_dataset("DA", max_edges=10_000)
        large = load_dataset("DA", max_edges=30_000)
        assert small.num_edges < large.num_edges

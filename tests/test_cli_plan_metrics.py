"""Tests for the plan subcommand and the fig6a metric selector."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.fig6_datasets import run_fig6a


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    from repro.datasets.cache import clear_memory_cache

    clear_memory_cache()
    yield
    clear_memory_cache()


class TestPlanCommand:
    def test_prints_required_epsilon(self, capsys):
        code = main(
            ["plan", "--target-mae", "2", "--du", "30", "--dw", "80",
             "--pool", "5000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "required epsilon" in out
        eps = float(out.splitlines()[2].split(":")[1])
        assert 0 < eps < 64

    def test_infeasible_target_reports_cleanly(self, capsys):
        code = main(
            ["plan", "--target-mae", "0.0001", "--du", "100000",
             "--dw", "100000", "--pool", "10", "--method", "multir-ss"]
        )
        assert code == 1
        assert "infeasible" in capsys.readouterr().out

    def test_method_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["plan", "--target-mae", "1", "--du", "1", "--dw", "1",
                  "--pool", "10", "--method", "naive"])


class TestFig6aMetricSelector:
    def test_mre_metric(self):
        panel = run_fig6a(
            datasets=["RM"], num_pairs=8, max_edges=12_000, rng=1, metric="mre"
        )
        assert "relative" in panel.y_label
        assert panel.series["naive"][0] > panel.series["multir-ds"][0]

    def test_l2_metric(self):
        panel = run_fig6a(
            datasets=["RM"], num_pairs=8, max_edges=12_000, rng=2, metric="l2"
        )
        assert "L2" in panel.y_label

    def test_default_is_mae(self):
        panel = run_fig6a(datasets=["RM"], num_pairs=8, max_edges=12_000, rng=3)
        assert panel.y_label == "mean absolute error"

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            run_fig6a(datasets=["RM"], num_pairs=4, max_edges=12_000, metric="rmse")

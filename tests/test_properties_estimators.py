"""Property-based tests over the estimators themselves.

Hypothesis generates random graphs, query pairs and budgets; the
invariants checked here must hold for *every* input, not just the tuned
experiment configurations:

* estimates are always finite and the privacy ledger never exceeds ε;
* at a huge budget every algorithm collapses to the exact count;
* the transcript's byte counts and round counts are structurally sane.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators.registry import get_estimator
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.protocol.session import ExecutionMode

LDP_ALGORITHMS = (
    "naive",
    "oner",
    "multir-ss",
    "multir-ds-basic",
    "multir-ds",
    "multir-ds-star",
)


@st.composite
def graph_and_pair(draw):
    n_upper = draw(st.integers(min_value=2, max_value=10))
    n_lower = draw(st.integers(min_value=2, max_value=10))
    cells = [(u, l) for u in range(n_upper) for l in range(n_lower)]
    edges = draw(st.lists(st.sampled_from(cells), max_size=30))
    graph = BipartiteGraph(n_upper, n_lower, edges)
    u = draw(st.integers(min_value=0, max_value=n_upper - 1))
    w = draw(st.integers(min_value=0, max_value=n_upper - 1).filter(lambda x: x != u))
    return graph, u, w


class TestEstimatorProperties:
    @given(graph_and_pair(), st.floats(0.2, 5.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_finite_and_within_budget(self, gp, epsilon, seed):
        graph, u, w = gp
        for name in LDP_ALGORITHMS:
            result = get_estimator(name).estimate(
                graph, Layer.UPPER, u, w, epsilon, rng=seed,
                mode=ExecutionMode.MATERIALIZE,
            )
            assert math.isfinite(result.value), name
            assert result.transcript.max_epsilon_spent <= epsilon + 1e-9, name
            assert result.transcript.upload_bytes >= 0, name
            assert result.rounds >= 1, name

    @given(graph_and_pair(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_huge_budget_recovers_exact_count(self, gp, seed):
        """ε → ∞ removes all randomness: every algorithm must return C2.

        (For the Laplace-based algorithms the residual noise at ε = 120 is
        ~Lap(1/40) or smaller, hence the 1.0 tolerance.)
        """
        graph, u, w = gp
        truth = graph.count_common_neighbors(Layer.UPPER, u, w)
        for name in LDP_ALGORITHMS:
            result = get_estimator(name).estimate(
                graph, Layer.UPPER, u, w, 120.0, rng=seed,
                mode=ExecutionMode.MATERIALIZE,
            )
            assert abs(result.value - truth) < 1.0, name

    @given(graph_and_pair(), st.floats(0.5, 4.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_modes_share_interface(self, gp, epsilon, seed):
        graph, u, w = gp
        for mode in (ExecutionMode.MATERIALIZE, ExecutionMode.SKETCH):
            result = get_estimator("multir-ds").estimate(
                graph, Layer.UPPER, u, w, epsilon, rng=seed, mode=mode
            )
            assert result.transcript.mode is mode
            total = (
                result.details["eps0"]
                + result.details["eps1"]
                + result.details["eps2"]
            )
            assert total == pytest.approx(epsilon)

    @given(graph_and_pair(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_central_dp_noise_is_query_independent(self, gp, seed):
        graph, u, w = gp
        result = get_estimator("central-dp").estimate(
            graph, Layer.UPPER, u, w, 2.0, rng=seed
        )
        truth = graph.count_common_neighbors(Layer.UPPER, u, w)
        # Lap(1/2): deviations beyond 20 have probability < 1e-17.
        assert abs(result.value - truth) < 20.0

    @given(graph_and_pair(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_naive_never_negative(self, gp, seed):
        graph, u, w = gp
        result = get_estimator("naive").estimate(
            graph, Layer.UPPER, u, w, 1.0, rng=seed,
            mode=ExecutionMode.MATERIALIZE,
        )
        assert result.value >= 0.0

    @given(graph_and_pair(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_ss_counts_bounded_by_degree(self, gp, seed):
        graph, u, w = gp
        result = get_estimator("multir-ss").estimate(
            graph, Layer.UPPER, u, w, 2.0, rng=seed,
            mode=ExecutionMode.MATERIALIZE,
        )
        degree = graph.degree(Layer.UPPER, u)
        assert 0 <= result.details["s1"] <= degree
        assert result.details["s1"] + result.details["s2"] == degree


class TestBatchProperties:
    @given(graph_and_pair(), st.floats(0.5, 4.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_budget_and_shape(self, gp, epsilon, seed):
        from repro.estimators.batch import BatchOneRound
        from repro.graph.sampling import QueryPair

        graph, u, w = gp
        pairs = [QueryPair(Layer.UPPER, u, w)]
        result = BatchOneRound().estimate_pairs(
            graph, Layer.UPPER, pairs, epsilon, rng=seed
        )
        assert result.max_epsilon_spent == pytest.approx(epsilon)
        assert np.isfinite(result.values).all()

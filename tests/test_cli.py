"""Tests for the repro-cne command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_MAX_EDGES", "15000")
    from repro.datasets.cache import clear_memory_cache

    clear_memory_cache()
    yield
    clear_memory_cache()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"
        assert args.max_edges is None

    def test_estimate_args(self):
        args = build_parser().parse_args(
            ["estimate", "--dataset", "RM", "-u", "1", "-w", "2", "--eps", "1.5"]
        )
        assert args.dataset == "RM"
        assert args.eps == 1.5
        assert args.method == "multir-ds"

    def test_estimate_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["estimate", "--dataset", "RM", "-u", "1", "-w", "2",
                 "--method", "bogus"]
            )

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig5"])
        assert args.name == "fig5"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets", "--max-edges", "15000"]) == 0
        out = capsys.readouterr().out
        assert "rmwiki" in out
        assert "orkut" in out
        assert len(out.strip().splitlines()) == 15

    def test_estimate_runs(self, capsys):
        code = main(
            ["estimate", "--dataset", "RM", "-u", "0", "-w", "1",
             "--seed", "3", "--show-true"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "estimate" in out
        assert "true C2" in out
        assert "rounds" in out

    def test_estimate_each_method(self, capsys):
        for method in ("naive", "oner", "multir-ss", "central-dp"):
            code = main(
                ["estimate", "--dataset", "RM", "-u", "0", "-w", "1",
                 "--method", method, "--seed", "1"]
            )
            assert code == 0

    def test_optimize_prints_allocation(self, capsys):
        assert main(["optimize", "--eps", "2", "--du", "5", "--dw", "100"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out
        assert "eps1" in out

    def test_experiment_fig5(self, capsys):
        assert main(["experiment", "fig5"]) == 0
        assert "global minimum" in capsys.readouterr().out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "rmwiki" in capsys.readouterr().out

    def test_experiment_fig2_quick(self, capsys):
        assert main(["experiment", "fig2", "--quick", "--seed", "4"]) == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_serve_simulates_clients(self, capsys):
        code = main(
            ["serve", "--dataset", "RM", "--max-edges", "3000",
             "--clients", "5", "--queries", "6", "--replays", "2",
             "--degree-eps", "0.5", "--seed", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "queries served  : 60" in out
        assert "hit rate" in out
        assert "budget (total)" in out

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--dataset", "RM"])
        assert args.command == "serve"
        assert args.clients == 20
        assert args.replays == 2
        assert args.mode == "auto"

"""Tests for the extended CLI subcommands (jaccard, generate, summary,
experiment --out)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graph.io import read_edge_list


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_MAX_EDGES", "15000")
    from repro.datasets.cache import clear_memory_cache

    clear_memory_cache()
    yield
    clear_memory_cache()


class TestJaccardCommand:
    def test_runs_with_truth(self, capsys):
        code = main(
            ["jaccard", "--dataset", "RM", "-u", "0", "-w", "1",
             "--seed", "2", "--show-true"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "jaccard" in out
        assert "true" in out

    @pytest.mark.parametrize("kind", ["cosine", "dice", "overlap"])
    def test_other_kinds(self, capsys, kind):
        code = main(
            ["jaccard", "--dataset", "RM", "-u", "0", "-w", "1",
             "--kind", kind, "--seed", "1", "--show-true"]
        )
        assert code == 0
        assert kind in capsys.readouterr().out


class TestGenerateCommand:
    def test_writes_loadable_edge_list(self, tmp_path, capsys):
        out_file = tmp_path / "rm.tsv"
        code = main(["generate", "--dataset", "RM", "--out", str(out_file)])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        graph = read_edge_list(out_file)
        assert graph.num_edges > 0


class TestSummaryCommand:
    def test_prints_both_layers(self, capsys):
        code = main(["summary", "--dataset", "RM"])
        assert code == 0
        out = capsys.readouterr().out
        assert "upper" in out
        assert "lower" in out
        assert "gini" in out


class TestExperimentOut:
    def test_fig5_saves_series(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        code = main(["experiment", "fig5", "--out", str(out_dir)])
        assert code == 0
        assert "saved" in capsys.readouterr().out
        json_files = sorted(out_dir.glob("fig5_*.json"))
        assert len(json_files) == 2
        from repro.experiments.export import load_panel

        panel = load_panel(json_files[0])
        assert "global minimum" in panel.series

"""Tests for error metrics and Chebyshev bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.chebyshev import (
    confidence_interval,
    deviation_for_confidence,
    tail_probability,
)
from repro.analysis.metrics import (
    ErrorSummary,
    absolute_errors,
    bias,
    empirical_l2_loss,
    mean_absolute_error,
    mean_relative_error,
    summarize_errors,
)


class TestMetrics:
    def test_absolute_errors(self):
        out = absolute_errors([1, 2, 3], [2, 2, 1])
        np.testing.assert_array_equal(out, [1, 0, 2])

    def test_mae(self):
        assert mean_absolute_error([1, 2, 3], [2, 2, 1]) == pytest.approx(1.0)

    def test_mae_zero_for_perfect(self):
        assert mean_absolute_error([5, 6], [5, 6]) == 0.0

    def test_mre_with_floor(self):
        # True value 0 is floored to 1, so the relative error is |2-0|/1.
        assert mean_relative_error([0], [2]) == pytest.approx(2.0)

    def test_mre_standard(self):
        assert mean_relative_error([10], [12]) == pytest.approx(0.2)

    def test_l2(self):
        assert empirical_l2_loss([1, 2], [3, 2]) == pytest.approx(2.0)

    def test_bias_signed(self):
        assert bias([1, 1], [3, 1]) == pytest.approx(1.0)
        assert bias([3, 3], [1, 3]) == pytest.approx(-1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1, 2], [1])

    def test_empty_input(self):
        with pytest.raises(ValueError):
            mean_absolute_error([], [])

    def test_summary(self):
        s = summarize_errors([1, 2, 3, 4], [1, 3, 3, 3])
        assert isinstance(s, ErrorSummary)
        assert s.count == 4
        assert s.mae == pytest.approx(0.5)
        assert s.bias == pytest.approx(0.0)

    def test_summary_str(self):
        s = summarize_errors([1.0], [2.0])
        assert "mae=1" in str(s)


class TestChebyshev:
    def test_tail_probability_formula(self):
        assert tail_probability(4.0, 4.0) == pytest.approx(0.25)

    def test_tail_probability_capped(self):
        assert tail_probability(100.0, 1.0) == 1.0

    def test_tail_probability_zero_variance(self):
        assert tail_probability(0.0, 1.0) == 0.0

    def test_tail_probability_invalid(self):
        with pytest.raises(ValueError):
            tail_probability(-1.0, 1.0)
        with pytest.raises(ValueError):
            tail_probability(1.0, 0.0)

    def test_deviation_for_confidence(self):
        # 1 - conf = 1/k^2; conf = 0.75 -> k = 2.
        assert deviation_for_confidence(1.0, 0.75) == pytest.approx(2.0)

    def test_deviation_invalid_confidence(self):
        with pytest.raises(ValueError):
            deviation_for_confidence(1.0, 1.0)

    def test_confidence_interval_symmetric(self):
        lo, hi = confidence_interval(10.0, 4.0, confidence=0.75)
        assert lo == pytest.approx(6.0)
        assert hi == pytest.approx(14.0)

    def test_interval_coverage_empirically(self, rng):
        """Chebyshev must over-cover: check on a Laplace sample."""
        variance = 2.0  # Laplace(1)
        samples = rng.laplace(0.0, 1.0, size=20_000)
        lo, hi = -deviation_for_confidence(variance, 0.9), deviation_for_confidence(
            variance, 0.9
        )
        coverage = np.mean((samples >= lo) & (samples <= hi))
        assert coverage >= 0.9

"""Tests for the experiment suite orchestrator."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.experiments.suite import (
    EXPERIMENT_NAMES,
    run_all,
    run_experiment,
)


@pytest.fixture(autouse=True)
def _small_world(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_MAX_EDGES", "12000")
    from repro.datasets.cache import clear_memory_cache

    clear_memory_cache()
    yield
    clear_memory_cache()


class TestRunExperiment:
    def test_unknown_name(self):
        with pytest.raises(ReproError):
            run_experiment("fig99")

    def test_fig5_has_panels_and_text(self):
        output = run_experiment("fig5")
        assert output.name == "fig5"
        assert len(output.panels) == 2
        assert "global minimum" in output.text

    def test_table2_text_only(self):
        output = run_experiment("table2")
        assert output.panels == []
        assert "rmwiki" in output.text

    def test_fig9_quick_with_seed(self):
        output = run_experiment("fig9", quick=True, seed=11)
        assert output.panels
        assert "multir-ds" in output.text


class TestRunAll:
    def test_subset_and_report(self, tmp_path):
        out_dir = tmp_path / "report"
        outputs = run_all(
            out_dir=out_dir, quick=True, seed=5, names=("fig5", "table2")
        )
        assert [o.name for o in outputs] == ["fig5", "table2"]
        report = (out_dir / "REPORT.md").read_text()
        assert "## fig5" in report
        assert "## table2" in report
        assert list(out_dir.glob("fig5_*.json"))

    def test_no_output_dir(self):
        outputs = run_all(out_dir=None, quick=True, seed=5, names=("fig5",))
        assert len(outputs) == 1

    def test_names_constant_complete(self):
        assert len(EXPERIMENT_NAMES) == 11

"""Behavioural tests for every estimator (interface, privacy, structure)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PrivacyError, ReproError
from repro.estimators import (
    CentralDPEstimator,
    ExactCounter,
    MultiRoundDoubleSource,
    MultiRoundDoubleSourceBasic,
    MultiRoundDoubleSourceStar,
    MultiRoundSingleSource,
    NaiveEstimator,
    OneRoundEstimator,
    available_estimators,
    get_estimator,
)
from repro.graph.bipartite import Layer
from repro.privacy.mechanisms import flip_probability
from repro.protocol.session import ExecutionMode

ALL_LDP_NAMES = (
    "naive",
    "oner",
    "multir-ss",
    "multir-ds-basic",
    "multir-ds",
    "multir-ds-star",
)


class TestRegistry:
    def test_all_names_registered(self):
        names = available_estimators()
        for expected in ("exact", "central-dp") + ALL_LDP_NAMES:
            assert expected in names

    def test_get_estimator_unknown(self):
        with pytest.raises(ReproError):
            get_estimator("nope")

    def test_get_estimator_with_kwargs(self):
        est = get_estimator("multir-ss", graph_fraction=0.3)
        assert est.graph_fraction == 0.3

    def test_names_match_instances(self):
        for name in available_estimators():
            assert get_estimator(name).name == name


@pytest.mark.parametrize("name", ALL_LDP_NAMES)
@pytest.mark.parametrize("mode", [ExecutionMode.MATERIALIZE, ExecutionMode.SKETCH])
class TestAllLdpEstimators:
    def test_result_fields(self, small_graph, name, mode):
        est = get_estimator(name)
        result = est.estimate(small_graph, Layer.UPPER, 0, 1, 2.0, rng=3, mode=mode)
        assert result.algorithm == name
        assert result.epsilon == 2.0
        assert result.u == 0 and result.w == 1
        assert np.isfinite(result.value)

    def test_budget_never_exceeded(self, small_graph, name, mode):
        est = get_estimator(name)
        for seed in range(5):
            result = est.estimate(
                small_graph, Layer.UPPER, 2, 7, 1.5, rng=seed, mode=mode
            )
            assert result.transcript.max_epsilon_spent <= 1.5 + 1e-9

    def test_deterministic_given_seed(self, small_graph, name, mode):
        est = get_estimator(name)
        a = est.estimate(small_graph, Layer.UPPER, 0, 1, 2.0, rng=11, mode=mode)
        b = est.estimate(small_graph, Layer.UPPER, 0, 1, 2.0, rng=11, mode=mode)
        assert a.value == b.value

    def test_lower_layer_queries_work(self, small_graph, name, mode):
        est = get_estimator(name)
        result = est.estimate(small_graph, Layer.LOWER, 0, 1, 2.0, rng=5, mode=mode)
        assert np.isfinite(result.value)

    def test_communication_positive(self, small_graph, name, mode):
        est = get_estimator(name)
        result = est.estimate(small_graph, Layer.UPPER, 0, 1, 2.0, rng=5, mode=mode)
        assert result.communication_bytes > 0


class TestExact:
    def test_returns_truth(self, tiny_graph):
        result = ExactCounter().estimate(tiny_graph, Layer.UPPER, 0, 1)
        assert result.value == 3.0
        assert result.transcript is None

    def test_rejects_identical(self, tiny_graph):
        with pytest.raises(ValueError):
            ExactCounter().estimate(tiny_graph, Layer.UPPER, 1, 1)


class TestNaive:
    def test_round_structure(self, small_graph):
        result = NaiveEstimator().estimate(small_graph, Layer.UPPER, 0, 1, 2.0, rng=1)
        assert result.rounds == 1
        assert result.details["eps_rr"] == 2.0

    def test_value_is_noisy_intersection(self, small_graph):
        result = NaiveEstimator().estimate(small_graph, Layer.UPPER, 0, 1, 2.0, rng=1)
        assert result.value == float(result.details["noisy_intersection"])

    def test_huge_epsilon_recovers_truth(self, small_graph):
        truth = small_graph.count_common_neighbors(Layer.UPPER, 0, 1)
        result = NaiveEstimator().estimate(
            small_graph, Layer.UPPER, 0, 1, 50.0, rng=2,
            mode=ExecutionMode.MATERIALIZE,
        )
        assert result.value == truth


class TestOneR:
    def test_round_structure(self, small_graph):
        result = OneRoundEstimator().estimate(small_graph, Layer.UPPER, 0, 1, 2.0, rng=1)
        assert result.rounds == 1
        assert result.details["candidate_pool"] == small_graph.num_lower

    def test_expanded_formula_matches_direct_sum(self, rng):
        """The N1/N2 expansion must equal the per-candidate phi-product sum."""
        p = flip_probability(2.0)
        n = 200
        row_u = (rng.random(n) < 0.3).astype(float)
        row_w = (rng.random(n) < 0.2).astype(float)
        direct = float(((row_u - p) * (row_w - p)).sum() / (1 - 2 * p) ** 2)
        n1 = int((row_u * row_w).sum())
        n2 = int(np.maximum(row_u, row_w).sum())
        expanded = (
            n1 * (1 - p) ** 2 - (n2 - n1) * p * (1 - p) + (n - n2) * p * p
        ) / (1 - 2 * p) ** 2
        assert expanded == pytest.approx(direct, rel=1e-12)

    def test_huge_epsilon_recovers_truth(self, small_graph):
        truth = small_graph.count_common_neighbors(Layer.UPPER, 0, 1)
        result = OneRoundEstimator().estimate(
            small_graph, Layer.UPPER, 0, 1, 50.0, rng=2,
            mode=ExecutionMode.MATERIALIZE,
        )
        assert result.value == pytest.approx(truth, abs=1e-6)


class TestMultiRSS:
    def test_round_structure(self, small_graph):
        result = MultiRoundSingleSource().estimate(
            small_graph, Layer.UPPER, 0, 1, 2.0, rng=1
        )
        assert result.rounds == 2
        assert result.details["eps1"] == pytest.approx(1.0)
        assert result.details["eps2"] == pytest.approx(1.0)

    def test_counts_partition_source_degree(self, small_graph):
        result = MultiRoundSingleSource().estimate(
            small_graph, Layer.UPPER, 0, 1, 2.0, rng=1
        )
        deg = small_graph.degree(Layer.UPPER, 0)
        assert result.details["s1"] + result.details["s2"] == deg

    def test_source_w(self, small_graph):
        result = MultiRoundSingleSource(source="w").estimate(
            small_graph, Layer.UPPER, 0, 1, 2.0, rng=1
        )
        deg = small_graph.degree(Layer.UPPER, 1)
        assert result.details["s1"] + result.details["s2"] == deg

    def test_invalid_source(self):
        with pytest.raises(PrivacyError):
            MultiRoundSingleSource(source="x")

    def test_invalid_fraction(self):
        with pytest.raises(PrivacyError):
            MultiRoundSingleSource(graph_fraction=1.0)

    def test_custom_fraction_splits_budget(self, small_graph):
        result = MultiRoundSingleSource(graph_fraction=0.25).estimate(
            small_graph, Layer.UPPER, 0, 1, 2.0, rng=1
        )
        assert result.details["eps1"] == pytest.approx(0.5)
        assert result.details["eps2"] == pytest.approx(1.5)

    def test_optimized_budget_variant(self, small_graph):
        est = MultiRoundSingleSource(optimize_budget=True)
        result = est.estimate(small_graph, Layer.UPPER, 0, 1, 2.0, rng=1)
        assert result.rounds == 3
        assert result.details["eps0"] == pytest.approx(0.1)
        total = (
            result.details["eps0"]
            + result.details["eps1"]
            + result.details["eps2"]
        )
        assert total == pytest.approx(2.0)
        assert "predicted_loss" in result.details


class TestMultiRDS:
    def test_basic_round_structure(self, small_graph):
        result = MultiRoundDoubleSourceBasic().estimate(
            small_graph, Layer.UPPER, 0, 1, 2.0, rng=1
        )
        assert result.rounds == 2
        assert result.details["alpha"] == 0.5
        assert result.details["eps0"] == 0.0

    def test_basic_value_is_weighted_average(self, small_graph):
        result = MultiRoundDoubleSourceBasic().estimate(
            small_graph, Layer.UPPER, 0, 1, 2.0, rng=1
        )
        expected = 0.5 * result.details["f_u"] + 0.5 * result.details["f_w"]
        assert result.value == pytest.approx(expected)

    def test_full_ds_round_structure(self, small_graph):
        result = MultiRoundDoubleSource().estimate(
            small_graph, Layer.UPPER, 0, 1, 2.0, rng=1
        )
        assert result.rounds == 3
        assert result.details["eps0"] == pytest.approx(0.1)
        assert 0.0 <= result.details["alpha"] <= 1.0
        total = (
            result.details["eps0"]
            + result.details["eps1"]
            + result.details["eps2"]
        )
        assert total == pytest.approx(2.0)

    def test_full_ds_weighted_average(self, small_graph):
        result = MultiRoundDoubleSource().estimate(
            small_graph, Layer.UPPER, 0, 1, 2.0, rng=1
        )
        alpha = result.details["alpha"]
        expected = alpha * result.details["f_u"] + (1 - alpha) * result.details["f_w"]
        assert result.value == pytest.approx(expected)

    def test_degree_correction_replaces_nonpositive(self, small_graph):
        # With a tiny eps0 the noisy degree is often far off; corrected
        # degrees must always be >= 1 so the optimizer stays feasible.
        est = MultiRoundDoubleSource(eps0_fraction=0.01)
        for seed in range(10):
            result = est.estimate(small_graph, Layer.UPPER, 0, 1, 2.0, rng=seed)
            assert result.details["noisy_degree_u"] >= 1.0
            assert result.details["noisy_degree_w"] >= 1.0

    def test_alpha_favors_low_degree_source(self, medium_graph):
        degrees = medium_graph.degrees(Layer.UPPER)
        heavy = int(np.argmax(degrees))
        light = int(np.argmin(degrees + (np.arange(degrees.size) == heavy) * 10**6))
        result = MultiRoundDoubleSourceStar().estimate(
            medium_graph, Layer.UPPER, heavy, light, 2.0, rng=3
        )
        # f_w (the light vertex's estimator) should dominate: alpha < 0.5.
        assert result.details["alpha"] < 0.5

    def test_star_uses_public_degrees(self, small_graph):
        result = MultiRoundDoubleSourceStar().estimate(
            small_graph, Layer.UPPER, 0, 1, 2.0, rng=1
        )
        assert result.rounds == 2
        assert result.details["public_degree_u"] == small_graph.degree(Layer.UPPER, 0)
        assert result.details["eps0"] == 0.0

    def test_invalid_fractions(self):
        with pytest.raises(PrivacyError):
            MultiRoundDoubleSourceBasic(graph_fraction=0.0)
        with pytest.raises(PrivacyError):
            MultiRoundDoubleSource(eps0_fraction=1.0)


class TestCentralDP:
    def test_unbiased_around_truth(self, tiny_graph):
        est = CentralDPEstimator()
        values = [
            est.estimate(tiny_graph, Layer.UPPER, 0, 1, 1.0, rng=s).value
            for s in range(3000)
        ]
        assert np.mean(values) == pytest.approx(3.0, abs=0.15)

    def test_variance_matches_formula(self, tiny_graph):
        est = CentralDPEstimator()
        values = np.array(
            [est.estimate(tiny_graph, Layer.UPPER, 0, 1, 1.0, rng=s).value
             for s in range(4000)]
        )
        assert values.var() == pytest.approx(2.0, rel=0.15)

    def test_transcript_minimal(self, tiny_graph):
        result = CentralDPEstimator().estimate(tiny_graph, Layer.UPPER, 0, 1, 1.0, rng=1)
        assert result.rounds == 1
        assert result.communication_bytes == 8

    def test_invalid_epsilon(self, tiny_graph):
        with pytest.raises(ValueError):
            CentralDPEstimator().estimate(tiny_graph, Layer.UPPER, 0, 1, 0.0)

    def test_rejects_identical_vertices(self, tiny_graph):
        with pytest.raises(ValueError):
            CentralDPEstimator().estimate(tiny_graph, Layer.UPPER, 2, 2, 1.0)

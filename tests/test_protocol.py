"""Tests for the vertex/curator protocol session and message accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PrivacyError, ProtocolError
from repro.graph.bipartite import Layer
from repro.protocol.messages import (
    FLOAT_BYTES,
    ID_BYTES,
    CommunicationLog,
    Direction,
)
from repro.protocol.noisy import NoisyListHandle
from repro.protocol.session import ExecutionMode, ProtocolSession


class TestCommunicationLog:
    def test_totals(self):
        log = CommunicationLog()
        log.record(Direction.UPLOAD, 100, "a")
        log.record(Direction.DOWNLOAD, 50, "b")
        log.record(Direction.UPLOAD, 25, "a")
        assert log.total_bytes() == 175
        assert log.total_bytes(Direction.UPLOAD) == 125
        assert log.total_bytes(Direction.DOWNLOAD) == 50

    def test_megabytes(self):
        log = CommunicationLog()
        log.record(Direction.UPLOAD, 2_500_000, "x")
        assert log.total_megabytes() == pytest.approx(2.5)

    def test_by_label(self):
        log = CommunicationLog()
        log.record(Direction.UPLOAD, 10, "edges")
        log.record(Direction.UPLOAD, 20, "edges")
        log.record(Direction.UPLOAD, 5, "scalar")
        assert log.by_label() == {"edges": 30, "scalar": 5}

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            CommunicationLog().record(Direction.UPLOAD, -1, "x")


class TestNoisyListHandle:
    def test_contains_materialized(self):
        handle = NoisyListHandle(0, 1.0, 3, np.array([2, 5, 9]))
        mask = handle.contains(np.array([1, 2, 9, 10]))
        assert mask.tolist() == [False, True, True, False]

    def test_contains_empty_list(self):
        handle = NoisyListHandle(0, 1.0, 0, np.array([], dtype=np.int64))
        assert not handle.contains(np.array([0, 1])).any()

    def test_contains_sketch_raises(self):
        handle = NoisyListHandle(0, 1.0, 5, None)
        with pytest.raises(ProtocolError):
            handle.contains(np.array([1]))

    def test_materialized_flag(self):
        assert NoisyListHandle(0, 1.0, 1, np.array([0])).materialized
        assert not NoisyListHandle(0, 1.0, 1, None).materialized


class TestSessionConstruction:
    def test_invalid_epsilon(self, tiny_graph):
        with pytest.raises(PrivacyError):
            ProtocolSession(tiny_graph, Layer.UPPER, 0, 1, 0.0)

    def test_identical_vertices(self, tiny_graph):
        with pytest.raises(ProtocolError):
            ProtocolSession(tiny_graph, Layer.UPPER, 1, 1, 1.0)

    def test_unknown_vertex(self, tiny_graph):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            ProtocolSession(tiny_graph, Layer.UPPER, 0, 99, 1.0)

    def test_auto_mode_small_graph_materializes(self, tiny_graph):
        session = ProtocolSession(tiny_graph, Layer.UPPER, 0, 1, 1.0)
        assert session.mode is ExecutionMode.MATERIALIZE

    def test_n_opposite(self, tiny_graph):
        session = ProtocolSession(tiny_graph, Layer.UPPER, 0, 1, 1.0)
        assert session.n_opposite == tiny_graph.num_lower

    def test_rounds_counter(self, tiny_graph):
        session = ProtocolSession(tiny_graph, Layer.UPPER, 0, 1, 1.0)
        assert session.begin_round("x") == "round1:x"
        assert session.begin_round("y") == "round2:y"
        assert session.rounds == 2


@pytest.mark.parametrize("mode", [ExecutionMode.MATERIALIZE, ExecutionMode.SKETCH])
class TestSessionRounds:
    def _session(self, graph, mode, epsilon=2.0, seed=5):
        return ProtocolSession(
            graph, Layer.UPPER, 0, 1, epsilon, rng=seed, mode=mode
        )

    def test_randomized_response_charges_and_logs(self, small_graph, mode):
        session = self._session(small_graph, mode)
        handle = session.randomized_response(0, 1.0, "r1")
        assert session.ledger.spent(session.party(0)) == pytest.approx(1.0)
        assert session.comm.total_bytes(Direction.UPLOAD) == handle.size * ID_BYTES

    def test_randomized_response_rejects_non_query_vertex(self, small_graph, mode):
        session = self._session(small_graph, mode)
        with pytest.raises(ProtocolError):
            session.randomized_response(5, 1.0)

    def test_download_logs_bytes_no_charge(self, small_graph, mode):
        session = self._session(small_graph, mode)
        handle = session.randomized_response(0, 1.0)
        before = session.ledger.max_spent()
        session.download(handle, 1)
        assert session.ledger.max_spent() == before
        assert session.comm.total_bytes(Direction.DOWNLOAD) == handle.size * ID_BYTES

    def test_download_own_list_rejected(self, small_graph, mode):
        session = self._session(small_graph, mode)
        handle = session.randomized_response(0, 1.0)
        with pytest.raises(ProtocolError):
            session.download(handle, 0)

    def test_ss_counts_partition_degree(self, small_graph, mode):
        session = self._session(small_graph, mode)
        handle = session.randomized_response(1, 1.0)
        s1, s2 = session.ss_counts(0, handle)
        assert s1 + s2 == small_graph.degree(Layer.UPPER, 0)
        assert s1 >= 0 and s2 >= 0

    def test_ss_counts_same_owner_rejected(self, small_graph, mode):
        session = self._session(small_graph, mode)
        handle = session.randomized_response(0, 1.0)
        with pytest.raises(ProtocolError):
            session.ss_counts(0, handle)

    def test_naive_counts_bounds(self, small_graph, mode):
        session = self._session(small_graph, mode)
        hu = session.randomized_response(0, 1.0)
        hw = session.randomized_response(1, 1.0)
        n1, n2 = session.naive_counts(hu, hw)
        assert 0 <= n1 <= n2 <= session.n_opposite

    def test_naive_counts_mismatched_epsilon(self, small_graph, mode):
        session = self._session(small_graph, mode)
        hu = session.randomized_response(0, 0.5)
        hw = session.randomized_response(1, 1.0)
        with pytest.raises(ProtocolError):
            session.naive_counts(hu, hw)

    def test_degree_round(self, small_graph, mode):
        session = self._session(small_graph, mode)
        report = session.degree_round(0.5)
        layer_n = small_graph.num_upper
        assert session.comm.total_bytes(Direction.UPLOAD) == layer_n * FLOAT_BYTES
        assert session.ledger.spent(session.party(0)) == pytest.approx(0.5)
        assert session.ledger.spent("upper:rest") == pytest.approx(0.5)
        # Noisy degree should be within plausible Laplace range of the truth.
        true = small_graph.degree(Layer.UPPER, 0)
        assert abs(report.noisy_degree_u - true) < 40

    def test_degree_round_average_near_truth(self, small_graph, mode):
        session = self._session(small_graph, mode, epsilon=5.0)
        report = session.degree_round(2.0)
        truth = small_graph.average_degree(Layer.UPPER)
        assert report.noisy_average_degree == pytest.approx(truth, abs=2.0)

    def test_release_scalar(self, small_graph, mode):
        session = self._session(small_graph, mode)
        value = session.release_scalar(0, 10.0, 1.0, sensitivity=2.0)
        assert isinstance(value, float)
        assert session.comm.total_bytes(Direction.UPLOAD) == FLOAT_BYTES

    def test_budget_enforced_across_rounds(self, small_graph, mode):
        from repro.errors import BudgetExceededError

        session = self._session(small_graph, mode, epsilon=1.0)
        session.randomized_response(0, 0.8)
        with pytest.raises(BudgetExceededError):
            session.release_scalar(0, 1.0, 0.5, sensitivity=1.0)

    def test_finalize_summary(self, small_graph, mode):
        session = self._session(small_graph, mode)
        session.begin_round("rr")
        session.randomized_response(0, 1.0)
        transcript = session.finalize()
        assert transcript.rounds == 1
        assert transcript.total_bytes == transcript.upload_bytes
        assert transcript.max_epsilon_spent == pytest.approx(1.0)
        assert transcript.mode is mode


class TestMaterializeFidelity:
    """Materialize-mode outputs must be consistent with true adjacency."""

    def test_handle_neighbors_in_domain(self, small_graph):
        session = ProtocolSession(
            small_graph, Layer.UPPER, 0, 1, 2.0, rng=1,
            mode=ExecutionMode.MATERIALIZE,
        )
        handle = session.randomized_response(0, 2.0)
        assert handle.neighbors is not None
        assert handle.size == handle.neighbors.size
        assert handle.neighbors.max() < small_graph.num_lower

    def test_huge_epsilon_reproduces_true_list(self, small_graph):
        session = ProtocolSession(
            small_graph, Layer.UPPER, 0, 1, 50.0, rng=1,
            mode=ExecutionMode.MATERIALIZE,
        )
        handle = session.randomized_response(0, 50.0)
        np.testing.assert_array_equal(
            handle.neighbors, small_graph.neighbors(Layer.UPPER, 0)
        )

    def test_huge_epsilon_ss_counts_exact(self, small_graph):
        session = ProtocolSession(
            small_graph, Layer.UPPER, 0, 1, 50.0, rng=1,
            mode=ExecutionMode.MATERIALIZE,
        )
        handle = session.randomized_response(1, 50.0)
        s1, _ = session.ss_counts(0, handle)
        assert s1 == small_graph.count_common_neighbors(Layer.UPPER, 0, 1)

"""Sketch-view interop: every sketch family × planner / engine / cache.

The sublinear-memory path is only useful if each family plugs into the
whole stack: the per-vertex list-vs-sketch planner, the batch engine
(pure sketch-view, hybrid, and sharded), and the epoch cache with
eviction + deterministic redraw. Alongside the plumbing, the statistical
contract is checked on enumerated small domains: sketch estimates agree
with the materialized/exact answer within the family's closed-form
variance, the released Bloom bits follow the exact per-bit Bernoulli law
(chi-square), and the VoC noise matches the Laplace law (KS).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.core import BatchQueryEngine
from repro.engine.planner import plan_views, plan_workload
from repro.engine.sketches import (
    SKETCH_KINDS,
    SketchConfig,
    sketch_family,
)
from repro.errors import ProtocolError
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.graph.sampling import QueryPair
from repro.privacy.mechanisms import flip_probability
from repro.serving.cache import NoisyViewCache
from repro.protocol.session import ExecutionMode

pytestmark = pytest.mark.timeout(120)

EPS = 2.0

# One config per family, sized comparably (64-byte budget except voc,
# which needs 8 bytes per bucket).
CONFIGS = {
    "bloom": SketchConfig("bloom", 512),
    "voc": SketchConfig("voc", 64),
    "hll": SketchConfig("hll", 64),
}


def _pairs(layer, ia, ib):
    return [QueryPair(layer, int(a), int(b)) for a, b in zip(ia, ib)]


@pytest.fixture()
def workload(medium_graph):
    rng = np.random.default_rng(31)
    ia = rng.integers(0, 120, size=40)
    ib = (ia + 1 + rng.integers(0, 100, size=40)) % 120
    return medium_graph, _pairs(Layer.UPPER, ia, ib)


# ---------------------------------------------------------------- planner
@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_plan_views_closure_leaves_no_mixed_pairs(workload, kind):
    graph, pairs = workload
    plan = plan_workload(
        graph, Layer.UPPER, pairs, EPS,
        sketch_bytes=CONFIGS[kind].bytes_per_vertex,
        view_mem_bytes=4096,
    )
    vp = plan.views
    assert vp is not None
    mixed = vp.sketch_mask[plan.ia] ^ vp.sketch_mask[plan.ib]
    assert not mixed.any(), "pair closure must not leave mixed pairs"
    assert vp.num_sketched + vp.num_listed == plan.num_vertices


@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_plan_views_force_sketch_covers_everything(workload, kind):
    graph, pairs = workload
    plan = plan_workload(
        graph, Layer.UPPER, pairs, EPS,
        sketch_bytes=CONFIGS[kind].bytes_per_vertex,
        force_sketch=True,
    )
    assert plan.views.sketch_mask.all()
    assert plan.views.est_view_bytes == (
        plan.num_vertices * CONFIGS[kind].bytes_per_vertex
    )


def test_plan_views_budget_flips_more_vertices(workload):
    graph, pairs = workload
    plan = plan_workload(graph, Layer.UPPER, pairs, EPS)
    vertices, ia, ib = plan.vertices, plan.ia, plan.ib
    free = plan_views(
        graph, Layer.UPPER, vertices, EPS, ia=ia, ib=ib, sketch_bytes=64
    )
    tight = plan_views(
        graph, Layer.UPPER, vertices, EPS, ia=ia, ib=ib,
        sketch_bytes=64, mem_bytes=2048,
    )
    assert tight.num_sketched >= free.num_sketched
    assert tight.est_view_bytes <= max(2048, tight.vertices.size * 64)


def test_plan_views_rejects_bad_budgets(workload):
    graph, pairs = workload
    plan = plan_workload(graph, Layer.UPPER, pairs, EPS)
    with pytest.raises(ProtocolError):
        plan_views(
            graph, Layer.UPPER, plan.vertices, EPS,
            ia=plan.ia, ib=plan.ib, sketch_bytes=0,
        )
    with pytest.raises(ProtocolError):
        plan_workload(graph, Layer.UPPER, pairs, EPS, view_mem_bytes=1024)


# ----------------------------------------------------------------- engine
@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_engine_pure_sketch_view_is_seed_deterministic(workload, kind):
    graph, pairs = workload
    engine = BatchQueryEngine(mode=ExecutionMode.SKETCH_VIEW, sketch=CONFIGS[kind])
    runs = [
        engine.estimate_pairs(
            graph, Layer.UPPER, pairs, EPS, rng=np.random.default_rng(99)
        )
        for _ in range(2)
    ]
    assert np.array_equal(runs[0].values, runs[1].values)
    planner = runs[0].details["planner"]
    assert planner["sketched_vertices"] == runs[0].num_query_vertices
    assert planner["listed_vertices"] == 0
    assert planner["sketch_kind"] == kind


@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_engine_sketch_view_invariant_across_sharding(workload, kind):
    graph, pairs = workload
    baseline = BatchQueryEngine(
        mode=ExecutionMode.SKETCH_VIEW, sketch=CONFIGS[kind]
    ).estimate_pairs(graph, Layer.UPPER, pairs, EPS, rng=np.random.default_rng(5))
    for shards in (2, 4):
        with BatchQueryEngine(
            mode=ExecutionMode.SKETCH_VIEW, sketch=CONFIGS[kind], shards=shards
        ) as engine:
            sharded = engine.estimate_pairs(
                graph, Layer.UPPER, pairs, EPS, rng=np.random.default_rng(5)
            )
        assert np.array_equal(baseline.values, sharded.values)


def test_engine_hybrid_sketched_values_shard_invariant(workload):
    """Hybrid plans (mixed list/sketch) keep sketched pairs bit-identical
    whatever the listed block's shard count is."""
    graph, pairs = workload
    sketch = SketchConfig("hll", 300)
    results = {}
    for shards in (None, 2, 4):
        with BatchQueryEngine(
            mode=ExecutionMode.MATERIALIZE, sketch=sketch, shards=shards
        ) as engine:
            results[shards] = engine.estimate_pairs(
                graph, Layer.UPPER, pairs, EPS, rng=np.random.default_rng(17)
            )
    base = results[None]
    planner = base.details["planner"]
    assert 0 < planner["sketched_vertices"] < base.num_query_vertices, (
        "hybrid fixture must genuinely mix listed and sketched vertices"
    )
    # Sketched pairs carry the -1 sentinel in the noisy-count columns.
    sk_pairs = base.noisy_intersections == -1
    assert 0 < sk_pairs.sum() < sk_pairs.size
    for shards in (2, 4):
        assert np.array_equal(
            base.values[sk_pairs], results[shards].values[sk_pairs]
        )


@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_engine_budget_charge_matches_materialize_path(workload, kind):
    """One ε-charge per distinct vertex — same parallel composition as the
    materialized engine round."""
    graph, pairs = workload
    engine = BatchQueryEngine(mode=ExecutionMode.SKETCH_VIEW, sketch=CONFIGS[kind])
    res = engine.estimate_pairs(
        graph, Layer.UPPER, pairs, EPS, rng=np.random.default_rng(3)
    )
    assert res.max_epsilon_spent == pytest.approx(EPS)
    assert res.upload_bytes == (
        res.num_query_vertices * CONFIGS[kind].bytes_per_vertex
    )


# ------------------------------------------------------------------ cache
@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_cache_eviction_redraw_is_bit_identical(small_graph, kind):
    config = CONFIGS[kind]
    cache = NoisyViewCache(
        small_graph, Layer.UPPER, EPS,
        mode=ExecutionMode.SKETCH_VIEW, sketch=config,
        max_bytes=8 * config.bytes_per_vertex,
        rng=np.random.default_rng(11),
    )
    vertices = np.arange(20, dtype=np.int64)
    cache.sketch_view_fresh(vertices)
    first = cache.gather_sketch_views(vertices).copy()
    assert cache.evict_to_budget() > 0, "budget must actually evict views"
    # Touch everything again: evicted vertices redraw from the keyed
    # stream and must reproduce the identical released view.
    cache.sketch_view_fresh(vertices)
    again = cache.gather_sketch_views(vertices)
    assert np.array_equal(first, again)
    assert cache.stats.recharges > 0


@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_cached_serving_tick_charges_once(small_graph, kind):
    config = CONFIGS[kind]
    cache = NoisyViewCache(
        small_graph, Layer.UPPER, EPS,
        mode=ExecutionMode.SKETCH_VIEW, sketch=config,
        rng=np.random.default_rng(23),
    )
    rng = np.random.default_rng(7)
    ia = rng.integers(0, 40, size=12)
    ib = (ia + 1 + rng.integers(0, 30, size=12)) % 40
    pairs = _pairs(Layer.UPPER, ia, ib)
    # An AUTO engine adopts the cache's mode and sketch config per tick.
    engine = BatchQueryEngine()
    first = engine.estimate_pairs(
        small_graph, Layer.UPPER, pairs, rng=np.random.default_rng(1), cache=cache
    )
    assert first.details["cache"]["charged_vertices"] > 0
    second = engine.estimate_pairs(
        small_graph, Layer.UPPER, pairs, rng=np.random.default_rng(2), cache=cache
    )
    assert second.details["cache"]["charged_vertices"] == 0
    assert np.array_equal(first.values, second.values)
    rotated = cache.rotate()
    assert rotated >= 0
    third = engine.estimate_pairs(
        small_graph, Layer.UPPER, pairs, rng=np.random.default_rng(3), cache=cache
    )
    assert third.details["cache"]["charged_vertices"] > 0


def test_cache_rejects_mismatched_sketch_config(small_graph):
    cache = NoisyViewCache(
        small_graph, Layer.UPPER, EPS,
        mode=ExecutionMode.SKETCH_VIEW, sketch=CONFIGS["bloom"],
    )
    engine = BatchQueryEngine(
        mode=ExecutionMode.SKETCH_VIEW, sketch=CONFIGS["voc"]
    )
    with pytest.raises(ProtocolError):
        engine.estimate_pairs(
            small_graph, Layer.UPPER,
            [QueryPair(Layer.UPPER, 0, 1)], EPS, cache=cache,
        )


# ------------------------------------------------- statistical agreement
@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_sketch_agrees_with_exact_within_closed_form_variance(small_graph, kind):
    """Mean over repeated releases lands within the closed-form error bar.

    VoC is exactly unbiased; Bloom/HLL carry an asymptotic (log-inversion)
    bias, so the tolerance is five standard errors of the *declared*
    variance plus a small-count slack — if the closed form under-reported
    the true spread, this margin would trip. HLL's k-RR over 31 symbols
    needs a larger ε before its inversion is informative at all, so each
    family is tested at the smallest ε where its estimator is usable.
    """
    eps = {"bloom": EPS, "voc": EPS, "hll": 6.0}[kind]
    family = sketch_family(CONFIGS[kind])
    u, w = 3, 9
    true = small_graph.count_common_neighbors(Layer.UPPER, u, w)
    deg = np.array(
        [small_graph.degree(Layer.UPPER, u), small_graph.degree(Layer.UPPER, w)],
        dtype=np.float64,
    )
    vertices = np.array([u, w], dtype=np.int64)
    repeats = 160
    estimates = np.empty(repeats)
    for i in range(repeats):
        views = family.encode_release(
            small_graph, Layer.UPPER, vertices, eps,
            rng=np.random.default_rng(5000 + i),
        )
        estimates[i] = family.intersect(
            views, np.array([0]), np.array([1]), eps
        )[0]
    declared = family.intersection_variance(
        deg[:1], deg[1:], np.array([float(true)]), eps
    )[0]
    se = np.sqrt(declared / repeats)
    assert abs(estimates.mean() - true) <= 5.0 * se + 2.0
    # The closed form is conservative: the observed spread must not
    # exceed it by more than sampling slack.
    assert estimates.var(ddof=1) <= 3.0 * declared + 1.0


def test_bloom_released_bits_follow_bernoulli_law():
    """Chi-square on an enumerated domain: every released bit is Bernoulli
    with P(1) = 1-p on set bits and p on clear bits."""
    scipy_stats = pytest.importorskip("scipy.stats")
    config = SketchConfig("bloom", 32)
    family = sketch_family(config)
    p = flip_probability(EPS)
    raw = np.zeros((1, 32), dtype=bool)
    raw[0, :7] = True  # enumerated truth: bits 0..6 set, rest clear
    rng = np.random.default_rng(404)
    n = 4000
    ones = np.zeros(32)
    for _ in range(n):
        packed = family.release(raw, EPS, rng=rng)
        ones += np.unpackbits(packed, axis=1)[0, :32]
    expected = np.where(raw[0], (1.0 - p) * n, p * n)
    chi2 = float((((ones - expected) ** 2) / (expected * (1.0 - expected / n))).sum())
    pvalue = float(scipy_stats.chi2.sf(chi2, df=32))
    assert pvalue > 1e-4, f"released bits deviate from Bernoulli law (chi2={chi2:.1f})"


def test_voc_noise_matches_laplace_law():
    """KS test: released minus raw VoC buckets are Laplace(1/ε) draws."""
    scipy_stats = pytest.importorskip("scipy.stats")
    config = SketchConfig("voc", 64)
    family = sketch_family(config)
    raw = np.arange(64, dtype=np.float64).reshape(1, 64).repeat(60, axis=0)
    released = family.release(raw, EPS, rng=np.random.default_rng(808))
    noise = (released - raw).ravel()
    stat, pvalue = scipy_stats.kstest(
        noise, scipy_stats.laplace(scale=1.0 / EPS).cdf
    )
    assert pvalue > 1e-4, f"VoC noise fails Laplace KS test (D={stat:.4f})"


def test_keyed_release_matches_law_too():
    """The keyed (Philox inverse-CDF) Laplace path follows the same law as
    the rng path — KS on a large keyed draw."""
    scipy_stats = pytest.importorskip("scipy.stats")
    config = SketchConfig("voc", 64)
    family = sketch_family(config)
    raw = np.zeros((80, 64))
    released = family.release(
        raw, EPS, entropy=123456789, epoch=0,
        vertices=np.arange(80, dtype=np.int64),
    )
    stat, pvalue = scipy_stats.kstest(
        released.ravel(), scipy_stats.laplace(scale=1.0 / EPS).cdf
    )
    assert pvalue > 1e-4, f"keyed VoC noise fails Laplace KS test (D={stat:.4f})"

"""Tests for the top-level package surface."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import Layer


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_available_estimators_count(self):
        assert len(repro.available_estimators()) == 11


class TestEstimateCommonNeighbors:
    def test_default_method(self, small_graph):
        result = repro.estimate_common_neighbors(
            small_graph, Layer.UPPER, 0, 1, 2.0, rng=1
        )
        assert result.algorithm == "multir-ds"
        assert np.isfinite(result.value)

    def test_method_selection(self, small_graph):
        result = repro.estimate_common_neighbors(
            small_graph, Layer.UPPER, 0, 1, 2.0, method="oner", rng=1
        )
        assert result.algorithm == "oner"

    def test_kwargs_forwarded(self, small_graph):
        result = repro.estimate_common_neighbors(
            small_graph, Layer.UPPER, 0, 1, 2.0, method="multir-ss",
            graph_fraction=0.25, rng=1,
        )
        assert result.details["eps1"] == pytest.approx(0.5)

    def test_unknown_method(self, small_graph):
        with pytest.raises(repro.ReproError):
            repro.estimate_common_neighbors(
                small_graph, Layer.UPPER, 0, 1, 2.0, method="magic"
            )

    def test_mode_forwarded(self, small_graph):
        from repro import ExecutionMode

        result = repro.estimate_common_neighbors(
            small_graph, Layer.UPPER, 0, 1, 2.0, rng=1,
            mode=ExecutionMode.SKETCH,
        )
        assert result.transcript.mode is ExecutionMode.SKETCH


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (
            repro.GraphError,
            repro.DatasetError,
            repro.PrivacyError,
            repro.ProtocolError,
            repro.OptimizationError,
            repro.BudgetExceededError,
        ):
            assert issubclass(exc, repro.ReproError)

    def test_budget_exceeded_is_privacy_error(self):
        assert issubclass(repro.BudgetExceededError, repro.PrivacyError)

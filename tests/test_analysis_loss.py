"""Tests for the closed-form loss formulas (Table 3)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.loss import (
    central_dp_variance,
    double_source_variance,
    laplace_noise_coefficient,
    naive_expectation,
    naive_l2_loss,
    naive_variance,
    oner_l2_loss,
    oner_variance,
    rr_noise_coefficient,
    single_source_variance,
)
from repro.errors import PrivacyError
from repro.privacy.mechanisms import flip_probability


class TestCoefficients:
    def test_rr_coefficient_formula(self):
        p = flip_probability(1.0)
        assert rr_noise_coefficient(1.0) == pytest.approx(
            p * (1 - p) / (1 - 2 * p) ** 2
        )

    def test_laplace_coefficient_formula(self):
        p = flip_probability(1.0)
        assert laplace_noise_coefficient(1.0) == pytest.approx(
            (1 - p) ** 2 / (1 - 2 * p) ** 2
        )

    def test_coefficients_decrease_with_epsilon(self):
        gs = [rr_noise_coefficient(e) for e in (0.5, 1, 2, 4)]
        hs = [laplace_noise_coefficient(e) for e in (0.5, 1, 2, 4)]
        assert gs == sorted(gs, reverse=True)
        assert hs == sorted(hs, reverse=True)

    def test_laplace_coefficient_limit(self):
        assert laplace_noise_coefficient(30.0) == pytest.approx(1.0, abs=1e-8)


class TestNaiveFormulas:
    def test_expectation_with_no_noise_limit(self):
        # As eps -> inf the expectation approaches the true count.
        val = naive_expectation(30.0, 1000, 20, 30, c2=7)
        assert val == pytest.approx(7.0, abs=1e-6)

    def test_expectation_overcounts_sparse_graphs(self):
        # With many non-neighbors the p^2 term dominates: E > C2.
        val = naive_expectation(2.0, 10_000, 20, 30, c2=5)
        assert val > 5

    def test_expectation_hand_computed(self):
        eps = math.log(3)  # p = 1/4 exactly
        val = naive_expectation(eps, 10, 4, 3, c2=2)
        # c2 * (3/4)^2 + (du+dw-2c2) * (3/16) + (n-du-dw+c2) * (1/16)
        expected = 2 * 9 / 16 + 3 * 3 / 16 + 5 * 1 / 16
        assert val == pytest.approx(expected)

    def test_variance_positive(self):
        assert naive_variance(2.0, 1000, 20, 30, 5) > 0

    def test_l2_includes_bias(self):
        var = naive_variance(2.0, 1000, 20, 30, 5)
        l2 = naive_l2_loss(2.0, 1000, 20, 30, 5)
        assert l2 > var  # squared bias is strictly positive here

    def test_l2_grows_quadratically_in_n(self):
        small = naive_l2_loss(2.0, 1000, 10, 10, 2)
        large = naive_l2_loss(2.0, 10_000, 10, 10, 2)
        assert large / small > 50  # ~O(n^2) growth


class TestOneRFormulas:
    def test_variance_formula_terms(self):
        eps, n, du, dw = 2.0, 500, 10, 20
        p = flip_probability(eps)
        expected = (
            p**2 * (1 - p) ** 2 / (1 - 2 * p) ** 4 * n
            + p * (1 - p) / (1 - 2 * p) ** 2 * (du + dw)
        )
        assert oner_variance(eps, n, du, dw) == pytest.approx(expected)

    def test_l2_equals_variance(self):
        assert oner_l2_loss(2.0, 500, 10, 20) == oner_variance(2.0, 500, 10, 20)

    def test_linear_growth_in_n(self):
        small = oner_variance(2.0, 1000, 10, 10)
        large = oner_variance(2.0, 10_000, 10, 10)
        assert 8 < large / small < 11

    def test_oner_below_naive(self):
        args = (2.0, 5000, 30, 40)
        assert oner_l2_loss(*args) < naive_l2_loss(*args, c2=5)


class TestMultiRoundFormulas:
    def test_single_source_terms(self):
        eps1, eps2, du = 1.0, 1.0, 25
        expected = (
            rr_noise_coefficient(eps1) * du
            + 2 * laplace_noise_coefficient(eps1) / eps2**2
        )
        assert single_source_variance(eps1, eps2, du) == pytest.approx(expected)

    def test_single_source_independent_of_n(self):
        # No n anywhere in the signature — the whole point of MultiR-SS.
        assert single_source_variance(1.0, 1.0, 10) < oner_variance(2.0, 10_000, 10, 10)

    def test_single_source_requires_positive_eps2(self):
        with pytest.raises(PrivacyError):
            single_source_variance(1.0, 0.0, 10)

    def test_double_source_alpha_one_is_single_source(self):
        assert double_source_variance(1.0, 1.0, 1.0, 12, 99) == pytest.approx(
            single_source_variance(1.0, 1.0, 12)
        )

    def test_double_source_alpha_zero_is_other_source(self):
        assert double_source_variance(1.0, 1.0, 0.0, 12, 99) == pytest.approx(
            single_source_variance(1.0, 1.0, 99)
        )

    def test_double_source_alpha_half_halves_laplace(self):
        eps1 = eps2 = 1.0
        du = dw = 10
        full = double_source_variance(eps1, eps2, 1.0, du, dw)
        avg = double_source_variance(eps1, eps2, 0.5, du, dw)
        # RR term halves and the Laplace term halves under equal degrees.
        assert avg == pytest.approx(full / 2)

    def test_double_source_invalid_alpha(self):
        with pytest.raises(PrivacyError):
            double_source_variance(1.0, 1.0, 1.5, 10, 10)

    def test_double_source_invalid_eps2(self):
        with pytest.raises(PrivacyError):
            double_source_variance(1.0, -0.1, 0.5, 10, 10)


class TestCentralDP:
    def test_formula(self):
        assert central_dp_variance(2.0) == pytest.approx(0.5)

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyError):
            central_dp_variance(0.0)

    def test_central_below_local(self):
        # Central DP should beat every edge-LDP estimator at equal budget.
        assert central_dp_variance(2.0) < single_source_variance(1.0, 1.0, 1)

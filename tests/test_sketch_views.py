"""Unit tests for the sketch families in repro.engine.sketches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.sketches import (
    SKETCH_KINDS,
    BloomSketch,
    HllSketch,
    SketchConfig,
    VectorOfCountsSketch,
    sketch_family,
)
from repro.errors import ProtocolError
from repro.graph.bipartite import Layer

pytestmark = pytest.mark.timeout(120)

EPS = 2.0


# ----------------------------------------------------------------- config
def test_config_validates_kind_and_buckets():
    with pytest.raises(ProtocolError):
        SketchConfig("minhash", 64)
    with pytest.raises(ProtocolError):
        SketchConfig("voc", 4)  # below the minimum bucket count
    with pytest.raises(ProtocolError):
        SketchConfig("bloom", 65)  # bloom bits must pack into bytes


def test_config_bytes_per_vertex():
    assert SketchConfig("bloom", 512).bytes_per_vertex == 64
    assert SketchConfig("voc", 64).bytes_per_vertex == 512
    assert SketchConfig("hll", 64).bytes_per_vertex == 64


def test_for_budget_maximizes_buckets_within_budget():
    for kind in SKETCH_KINDS:
        config = SketchConfig.for_budget(kind, 64)
        assert config.bytes_per_vertex <= 64
    assert SketchConfig.for_budget("bloom", 64).m == 512
    assert SketchConfig.for_budget("voc", 64).m == 8
    assert SketchConfig.for_budget("hll", 64).m == 64
    with pytest.raises(ProtocolError):
        SketchConfig.for_budget("voc", 32)  # cannot hold 8 float buckets
    with pytest.raises(ProtocolError):
        SketchConfig.for_budget("minhash", 64)


def test_family_rejects_foreign_config():
    with pytest.raises(ProtocolError):
        BloomSketch(SketchConfig("voc", 64))
    assert isinstance(sketch_family(SketchConfig("hll", 64)), HllSketch)
    assert isinstance(
        sketch_family(SketchConfig("voc", 64)), VectorOfCountsSketch
    )


# ----------------------------------------------------------------- encode
def test_bloom_encode_sets_one_bit_per_distinct_neighbor(tiny_graph):
    family = sketch_family(SketchConfig("bloom", 64))
    raw = family.encode(tiny_graph, Layer.UPPER, np.array([0, 1, 2]))
    assert raw.shape == (3, 64) and raw.dtype == bool
    # Each vertex sets at most deg bits (hash collisions can merge some).
    degs = [tiny_graph.degree(Layer.UPPER, v) for v in (0, 1, 2)]
    for row, d in zip(raw, degs):
        assert 1 <= row.sum() <= d


def test_voc_encode_counts_sum_to_degree(tiny_graph):
    family = sketch_family(SketchConfig("voc", 16))
    raw = family.encode(tiny_graph, Layer.UPPER, np.array([0, 1, 2]))
    degs = [tiny_graph.degree(Layer.UPPER, v) for v in (0, 1, 2)]
    assert raw.sum(axis=1).tolist() == degs


def test_hll_encode_registers_bounded(tiny_graph):
    family = sketch_family(SketchConfig("hll", 16))
    raw = family.encode(tiny_graph, Layer.UPPER, np.array([0, 1]))
    assert raw.dtype == np.uint8
    assert raw.max() <= 30
    assert (raw > 0).sum(axis=1).max() <= max(
        tiny_graph.degree(Layer.UPPER, 0), tiny_graph.degree(Layer.UPPER, 1)
    )


def test_shared_hash_seed_makes_encodes_align(tiny_graph):
    a = sketch_family(SketchConfig("voc", 16, hash_seed=1))
    b = sketch_family(SketchConfig("voc", 16, hash_seed=1))
    c = sketch_family(SketchConfig("voc", 16, hash_seed=2))
    va = a.encode(tiny_graph, Layer.UPPER, np.array([0, 1]))
    vb = b.encode(tiny_graph, Layer.UPPER, np.array([0, 1]))
    vc = c.encode(tiny_graph, Layer.UPPER, np.array([0, 1]))
    assert np.array_equal(va, vb)
    assert not np.array_equal(va, vc)


# ---------------------------------------------------------------- release
@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_release_shapes_and_dtypes(small_graph, kind):
    config = SketchConfig(kind, 64)
    family = sketch_family(config)
    vertices = np.arange(6, dtype=np.int64)
    views = family.encode_release(
        small_graph, Layer.UPPER, vertices, EPS, rng=np.random.default_rng(0)
    )
    assert views.shape[0] == 6
    assert views.shape[1] * views.dtype.itemsize == config.bytes_per_vertex
    if kind == "hll":
        assert views.max() < HllSketch.num_values


@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_keyed_release_is_deterministic_and_epoch_scoped(small_graph, kind):
    family = sketch_family(SketchConfig(kind, 64))
    vertices = np.arange(8, dtype=np.int64)
    one = family.encode_release(
        small_graph, Layer.UPPER, vertices, EPS, entropy=42, epoch=0
    )
    two = family.encode_release(
        small_graph, Layer.UPPER, vertices, EPS, entropy=42, epoch=0
    )
    other_epoch = family.encode_release(
        small_graph, Layer.UPPER, vertices, EPS, entropy=42, epoch=1
    )
    other_entropy = family.encode_release(
        small_graph, Layer.UPPER, vertices, EPS, entropy=43, epoch=0
    )
    assert np.array_equal(one, two)
    assert not np.array_equal(one, other_epoch)
    assert not np.array_equal(one, other_entropy)


@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_keyed_release_rows_are_vertex_keyed(small_graph, kind):
    """Releasing a subset reproduces exactly the full batch's rows — the
    property that makes cache redraw and sharding bit-identical."""
    family = sketch_family(SketchConfig(kind, 64))
    full = family.encode_release(
        small_graph, Layer.UPPER, np.arange(10, dtype=np.int64), EPS,
        entropy=7, epoch=0,
    )
    subset = np.array([2, 5, 9], dtype=np.int64)
    part = family.encode_release(
        small_graph, Layer.UPPER, subset, EPS, entropy=7, epoch=0
    )
    assert np.array_equal(part, full[subset])


def test_keyed_release_requires_vertex_ids(small_graph):
    family = sketch_family(SketchConfig("voc", 16))
    raw = family.encode(small_graph, Layer.UPPER, np.arange(4))
    with pytest.raises(ProtocolError):
        family.release(raw, EPS, entropy=1)


# ------------------------------------------------------------- estimation
@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_cardinality_tracks_degree_at_high_epsilon(small_graph, kind):
    family = sketch_family(SketchConfig(kind, 512 if kind == "bloom" else 64))
    vertices = np.arange(12, dtype=np.int64)
    degs = np.array(
        [small_graph.degree(Layer.UPPER, int(v)) for v in vertices], float
    )
    reps = 60
    acc = np.zeros(vertices.size)
    for i in range(reps):
        views = family.encode_release(
            small_graph, Layer.UPPER, vertices, 12.0,
            rng=np.random.default_rng(900 + i),
        )
        acc += family.cardinality(views, 12.0)
    mean = acc / reps
    # Within one count of the truth on average (hash collisions and the
    # log inversion keep this approximate rather than exact).
    assert np.abs(mean - degs).max() <= 1.5


@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_intersection_variance_is_positive_and_monotone(kind):
    family = sketch_family(SketchConfig(kind, 64))
    lo = family.intersection_variance(
        np.array([4.0]), np.array([4.0]), np.array([1.0]), EPS
    )
    hi = family.intersection_variance(
        np.array([12.0]), np.array([12.0]), np.array([1.0]), EPS
    )
    assert lo[0] > 0
    assert hi[0] >= lo[0]


def test_voc_intersect_unbiased_over_hash_and_noise(small_graph):
    """The VoC estimator is exactly unbiased over hash + noise randomness:
    average over many (hash_seed, noise) draws converges to C2."""
    u, w = 3, 9
    true = small_graph.count_common_neighbors(Layer.UPPER, u, w)
    rng = np.random.default_rng(777)
    reps = 300
    vals = np.empty(reps)
    for i in range(reps):
        family = sketch_family(
            SketchConfig("voc", 16, hash_seed=int(rng.integers(1 << 62)))
        )
        views = family.encode_release(
            small_graph, Layer.UPPER, np.array([u, w]), EPS, rng=rng
        )
        vals[i] = family.intersect(views, np.array([0]), np.array([1]), EPS)[0]
    se = vals.std(ddof=1) / np.sqrt(reps)
    assert abs(vals.mean() - true) <= 5.0 * se + 0.05

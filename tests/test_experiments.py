"""Tests for the experiment harness: report rendering, runner, figures.

Figure runners are exercised in quick configurations (small edge budgets,
few pairs) — the full-scale shapes are asserted by the benchmark suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig2_distribution import run_fig2, select_imbalanced_pair
from repro.experiments.fig5_loss_landscape import run_fig5
from repro.experiments.fig6_datasets import run_fig6a, run_fig6b
from repro.experiments.fig7_epsilon import run_fig7
from repro.experiments.fig8_budget import run_fig8
from repro.experiments.fig9_imbalance import run_fig9
from repro.experiments.fig10_communication import run_fig10
from repro.experiments.fig11_scalability import run_fig11
from repro.experiments.report import SeriesPanel, ascii_histogram, format_table
from repro.experiments.runner import evaluate_algorithms, resolve_estimators
from repro.experiments.table2_datasets import run_table2, table2_text
from repro.experiments.table3_summary import run_table3
from repro.graph.bipartite import Layer
from repro.graph.sampling import sample_query_pairs

MAX_EDGES = 15_000
SMALL = ("RM", "AC")


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    from repro.datasets.cache import clear_memory_cache

    clear_memory_cache()
    yield
    clear_memory_cache()


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        # title + header + separator + two data rows
        assert len(lines) == 5

    def test_series_panel_add_and_value(self):
        panel = SeriesPanel("t", "x", [1, 2, 3])
        panel.add("algo", [0.1, 0.2, 0.3])
        assert panel.value("algo", 2) == 0.2

    def test_series_panel_length_mismatch(self):
        panel = SeriesPanel("t", "x", [1, 2])
        with pytest.raises(ValueError):
            panel.add("algo", [1.0])

    def test_series_panel_to_text(self):
        panel = SeriesPanel("title", "eps", [1.0, 2.0])
        panel.add("naive", [10.0, 5.0])
        text = panel.to_text()
        assert "naive" in text
        assert "title" in text

    def test_ascii_histogram(self, rng):
        text = ascii_histogram(rng.normal(size=500), bins=10, title="h")
        assert text.startswith("h")
        assert "#" in text

    def test_ascii_histogram_empty(self):
        assert ascii_histogram(np.array([])) == "(no samples)"


class TestRunner:
    def test_resolve_mixed_specs(self):
        from repro.estimators import NaiveEstimator

        resolved = resolve_estimators(["oner", NaiveEstimator()])
        assert list(resolved) == ["oner", "naive"]

    def test_evaluate_produces_stats(self, small_graph):
        pairs = sample_query_pairs(small_graph, Layer.UPPER, 10, rng=1)
        stats = evaluate_algorithms(
            small_graph, pairs, ["naive", "central-dp"], 2.0, rng=2
        )
        assert set(stats) == {"naive", "central-dp"}
        for s in stats.values():
            assert s.errors.count == 10
            assert s.mean_seconds > 0
            assert s.mean_comm_bytes >= 8

    def test_evaluate_empty_pairs_raises(self, small_graph):
        with pytest.raises(ValueError):
            evaluate_algorithms(small_graph, [], ["naive"], 2.0)

    def test_central_dp_has_tiny_error(self, small_graph):
        pairs = sample_query_pairs(small_graph, Layer.UPPER, 20, rng=3)
        stats = evaluate_algorithms(
            small_graph, pairs, ["naive", "central-dp"], 2.0, rng=4
        )
        assert stats["central-dp"].errors.mae < stats["naive"].errors.mae


class TestFig2:
    def test_select_imbalanced_pair(self, medium_graph):
        pair = select_imbalanced_pair(medium_graph, Layer.UPPER, rng=1)
        degs = medium_graph.degrees(Layer.UPPER)
        # The anchor is a strong hub (well above average), the partner light.
        assert degs[pair.a] > 1.5 * degs.mean()
        assert degs[pair.b] < degs[pair.a]

    def test_run_fig2_structure(self):
        result = run_fig2(
            dataset="RM", trials=60, max_edges=MAX_EDGES, rng=5
        )
        assert set(result.samples) == {"naive", "oner", "multir-ss", "multir-ds"}
        assert all(v.size == 60 for v in result.samples.values())
        assert result.degree_u >= result.degree_w

    def test_fig2_naive_biased_upward(self):
        result = run_fig2(dataset="RM", trials=150, max_edges=MAX_EDGES, rng=6)
        assert result.samples["naive"].mean() > result.true_count

    def test_fig2_text_renders(self):
        result = run_fig2(dataset="RM", trials=30, max_edges=MAX_EDGES, rng=7)
        text = result.to_text(histogram=True)
        assert "Fig. 2" in text
        assert "naive" in text


class TestFig5:
    def test_panel_structure(self):
        panels = run_fig5(num_points=7)
        assert len(panels) == 2
        for panel in panels:
            assert len(panel.panel.x_values) == 7
            assert "global minimum" in panel.panel.series

    def test_global_min_below_all_curves(self):
        for panel in run_fig5(num_points=9):
            for label, values in panel.panel.series.items():
                if label == "global minimum":
                    continue
                assert panel.global_minimum <= min(values) + 1e-9

    def test_balanced_panel_average_wins(self):
        panels = run_fig5(deg_u=5, deg_w_values=(10,), num_points=9)
        panel = panels[0].panel
        avg = min(panel.series["alpha=0.5 (average)"])
        single_u = min(panel.series["alpha=1 (f_u)"])
        single_w = min(panel.series["alpha=0 (f_w)"])
        assert avg < min(single_u, single_w)

    def test_imbalanced_panel_low_degree_wins(self):
        panels = run_fig5(deg_u=5, deg_w_values=(100,), num_points=9)
        panel = panels[0].panel
        low_source = min(panel.series["alpha=1 (f_u)"])  # du = 5 is the light one
        avg = min(panel.series["alpha=0.5 (average)"])
        assert low_source < avg

    def test_to_text(self):
        text = run_fig5(num_points=5)[0].to_text()
        assert "global minimum" in text


class TestTables:
    def test_table2_rows(self):
        rows = run_table2(keys=list(SMALL), max_edges=MAX_EDGES)
        assert len(rows) == 2
        assert rows[0].key == "RM"
        assert rows[0].synth_edges <= MAX_EDGES + 1
        text = table2_text(rows)
        assert "rmwiki" in text

    def test_table3_runs_and_orders(self):
        result = run_table3(trials=250, rng=9)
        names = [r.algorithm for r in result.rows]
        assert "naive" in names and "central-dp" in names
        by_name = {r.algorithm: r for r in result.rows}
        # Unbiased algorithms' empirical means should be near the truth...
        assert abs(by_name["oner"].empirical_mean - result.true_count) < 10
        # ...and Naive visibly biased above it.
        assert by_name["naive"].empirical_mean > result.true_count
        assert "Table 3" in result.to_text()


class TestFigureRunners:
    def test_fig6a(self):
        panel = run_fig6a(
            datasets=list(SMALL), num_pairs=8, max_edges=MAX_EDGES, rng=1
        )
        assert panel.x_values == list(SMALL)
        assert panel.value("central-dp", "RM") < panel.value("naive", "RM")

    def test_fig6b(self):
        panel = run_fig6b(
            datasets=["RM"], num_pairs=2, max_edges=MAX_EDGES, rng=2
        )
        for values in panel.series.values():
            assert all(v > 0 for v in values)

    def test_fig7(self):
        panels = run_fig7(
            datasets=["RM"], epsilons=(1.0, 3.0), num_pairs=8,
            max_edges=MAX_EDGES, rng=3,
        )
        assert len(panels) == 1
        naive = panels[0].series["naive"]
        assert naive[0] > naive[-1]  # error falls with epsilon

    def test_fig8(self):
        panels = run_fig8(
            datasets=["RM"], fractions=(0.3, 0.5), num_pairs=8,
            max_edges=MAX_EDGES, rng=4,
        )
        panel = panels[0]
        assert len(panel.series["multir-ds-basic"]) == 2
        ds_line = panel.series["multir-ds (optimized)"]
        assert ds_line[0] == ds_line[1]

    def test_fig9(self):
        panels = run_fig9(
            datasets=["RM"], kappas=(1, 10), num_pairs=8,
            max_edges=MAX_EDGES, rng=5,
        )
        assert set(panels[0].series) == {"multir-ss", "multir-ds-basic", "multir-ds"}

    def test_fig10(self):
        panels = run_fig10(
            datasets=["RM"], epsilons=(1.0, 2.0), num_pairs=4,
            max_edges=MAX_EDGES, rng=6,
        )
        panel = panels[0]
        # Communication shrinks as epsilon grows (sparser noisy graphs).
        for name in ("naive", "oner"):
            assert panel.series[name][0] > panel.series[name][1]
        # MultiR-DS moves the most bytes.
        assert panel.series["multir-ds"][0] > panel.series["naive"][0]

    def test_fig11(self):
        panels = run_fig11(
            datasets=["RM"], fractions=(0.4, 1.0), num_pairs=8,
            max_edges=MAX_EDGES, rng=7,
        )
        assert len(panels[0].series["naive"]) == 2

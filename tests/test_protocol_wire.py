"""Tests for the wire format."""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PayloadIntegrityError, ProtocolError
from repro.protocol.wire import (
    CAP_MUTATE,
    CAP_REDUCE,
    CAP_VERSIONS,
    DELTA_DIGEST_MISMATCH,
    DELTA_OK,
    DELTA_UNKNOWN_BASE,
    KIND_DELTA_ACK,
    KIND_ESTIMATE,
    KIND_FRAGMENT,
    KIND_GRAPH,
    KIND_HELLO,
    KIND_MUTATE,
    KIND_NOISY_DEGREE,
    KIND_NOISY_EDGES,
    KIND_PING,
    KIND_PONG,
    KIND_REDUCED,
    KIND_SHARD_SPEC,
    KIND_WORKER_ERROR,
    MAX_FRAME_PAYLOAD,
    WIRE_VERSION,
    decode_frame,
    delta_checksum,
    encode_delta_ack,
    encode_fragment,
    encode_graph,
    encode_hello,
    encode_mutate,
    encode_noisy_edges,
    encode_ping,
    encode_pong,
    encode_reduced,
    encode_scalar,
    encode_shard_spec,
    encode_worker_error,
    frame_overhead,
    graph_digest,
    payload_bytes,
)


class TestNoisyEdges:
    def test_round_trip(self):
        ids = np.array([3, 17, 99, 2**40], dtype=np.int64)
        frame = encode_noisy_edges(ids)
        kind, decoded, rest = decode_frame(frame)
        assert kind == KIND_NOISY_EDGES
        np.testing.assert_array_equal(decoded, ids)
        assert rest == b""

    def test_empty_list(self):
        frame = encode_noisy_edges(np.array([], dtype=np.int64))
        kind, decoded, _ = decode_frame(frame)
        assert kind == KIND_NOISY_EDGES
        assert decoded.size == 0

    def test_payload_bytes_matches_accounting(self):
        """The Fig. 10 model counts 8 bytes per id — and so does the wire."""
        ids = np.arange(25)
        frame = encode_noisy_edges(ids)
        assert payload_bytes(frame) == 25 * 8
        assert len(frame) == 25 * 8 + frame_overhead()

    def test_negative_ids_rejected(self):
        with pytest.raises(ProtocolError):
            encode_noisy_edges(np.array([-1]))


class TestScalars:
    @pytest.mark.parametrize("kind", [KIND_NOISY_DEGREE, KIND_ESTIMATE])
    def test_round_trip(self, kind):
        frame = encode_scalar(-12.3456789, kind)
        decoded_kind, value, rest = decode_frame(frame)
        assert decoded_kind == kind
        assert value == pytest.approx(-12.3456789)
        assert rest == b""

    def test_scalar_is_eight_bytes(self):
        frame = encode_scalar(1.0, KIND_ESTIMATE)
        assert payload_bytes(frame) == 8

    def test_invalid_kind_rejected(self):
        with pytest.raises(ProtocolError):
            encode_scalar(1.0, KIND_NOISY_EDGES)


class TestFraming:
    def test_concatenated_frames_stream(self):
        stream = (
            encode_noisy_edges(np.array([1, 2]))
            + encode_scalar(3.5, KIND_NOISY_DEGREE)
            + encode_scalar(7.0, KIND_ESTIMATE)
        )
        kinds = []
        while stream:
            kind, _, stream = decode_frame(stream)
            kinds.append(kind)
        assert kinds == [KIND_NOISY_EDGES, KIND_NOISY_DEGREE, KIND_ESTIMATE]

    def test_truncated_header(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"\x01")

    def test_truncated_payload(self):
        frame = encode_noisy_edges(np.array([1, 2, 3]))
        with pytest.raises(ProtocolError):
            decode_frame(frame[:-4])

    def test_unknown_kind(self):
        import struct

        bogus = struct.pack("<BI", 99, 0)
        with pytest.raises(ProtocolError):
            decode_frame(bogus)

    def test_misaligned_edge_payload(self):
        import struct

        bogus = struct.pack("<BI", KIND_NOISY_EDGES, 7) + b"\x00" * 7
        with pytest.raises(ProtocolError):
            decode_frame(bogus)

    def test_bad_scalar_length(self):
        import struct

        bogus = struct.pack("<BI", KIND_ESTIMATE, 4) + b"\x00" * 4
        with pytest.raises(ProtocolError):
            decode_frame(bogus)

class TestShardTransportFrames:
    """Round trips of the parent<->worker frame kinds."""

    def test_hello_round_trip(self):
        frame = encode_hello(WIRE_VERSION, CAP_REDUCE | CAP_VERSIONS, 0xDEAD)
        kind, payload, rest = decode_frame(frame)
        assert kind == KIND_HELLO
        assert payload == {
            "version": WIRE_VERSION,
            "caps": CAP_REDUCE | CAP_VERSIONS,
            "digest": 0xDEAD,
        }
        assert rest == b""

    def test_ping_pong_echo_nonce(self):
        kind, payload, _ = decode_frame(encode_ping(7))
        assert kind == KIND_PING and payload["nonce"] == 7
        kind, payload, _ = decode_frame(encode_pong(7))
        assert kind == KIND_PONG and payload["nonce"] == 7

    def test_graph_round_trip_and_digest(self):
        edges = np.array([[0, 1], [2, 0], [1, 1]], dtype=np.int64)
        frame = encode_graph(3, 2, edges)
        kind, payload, _ = decode_frame(frame)
        assert kind == KIND_GRAPH
        assert payload["n_upper"] == 3 and payload["n_lower"] == 2
        np.testing.assert_array_equal(payload["edges"], edges)
        assert payload["digest"] == graph_digest(3, 2, edges)

    def test_graph_digest_tracks_content(self):
        edges = np.array([[0, 1], [2, 0]], dtype=np.int64)
        base = graph_digest(3, 2, edges)
        assert graph_digest(4, 2, edges) != base
        assert graph_digest(3, 2, edges[:1]) != base

    def test_corrupted_graph_payload_rejected(self):
        frame = bytearray(encode_graph(3, 2, np.array([[0, 1]], dtype=np.int64)))
        frame[-1] ^= 0xFF
        with pytest.raises(PayloadIntegrityError):
            decode_frame(bytes(frame))

    def test_shard_spec_round_trip_full(self):
        frame = encode_shard_spec(
            shard=2, attempt=1, epoch=5, entropy=12345, epsilon=1.5,
            domain=60, layer=1,
            vertices=np.array([4, 9, 11], dtype=np.int64),
            versions=np.array([0, 2, 0], dtype=np.uint64),
            ia=np.array([0, 1], dtype=np.int64),
            ib=np.array([2, 2], dtype=np.int64),
            want_fragment=False, measure=True,
        )
        kind, spec, _ = decode_frame(frame)
        assert kind == KIND_SHARD_SPEC
        assert spec["shard"] == 2 and spec["attempt"] == 1
        assert spec["epoch"] == 5 and spec["entropy"] == 12345
        assert spec["epsilon"] == pytest.approx(1.5)
        assert spec["domain"] == 60 and spec["layer"] == 1
        np.testing.assert_array_equal(spec["vertices"], [4, 9, 11])
        np.testing.assert_array_equal(spec["versions"], [0, 2, 0])
        np.testing.assert_array_equal(spec["ia"], [0, 1])
        np.testing.assert_array_equal(spec["ib"], [2, 2])
        assert spec["want_fragment"] is False
        assert spec["measure"] is True

    def test_shard_spec_minimal(self):
        frame = encode_shard_spec(
            shard=0, attempt=0, epoch=0, entropy=1, epsilon=2.0,
            domain=10, layer=0, vertices=np.array([1], dtype=np.int64),
        )
        _, spec, _ = decode_frame(frame)
        assert spec["versions"] is None
        assert spec["ia"] is None and spec["ib"] is None
        assert spec["want_fragment"] is True and spec["measure"] is False

    def test_shard_spec_refuses_lone_pair_side(self):
        with pytest.raises(ProtocolError):
            encode_shard_spec(
                shard=0, attempt=0, epoch=0, entropy=1, epsilon=2.0,
                domain=10, layer=0, vertices=np.array([1], dtype=np.int64),
                ia=np.array([0], dtype=np.int64),
            )

    def test_shard_spec_refuses_misaligned_versions(self):
        with pytest.raises(ProtocolError):
            encode_shard_spec(
                shard=0, attempt=0, epoch=0, entropy=1, epsilon=2.0,
                domain=10, layer=0, vertices=np.array([1, 2], dtype=np.int64),
                versions=np.array([0], dtype=np.uint64),
            )

    def test_fragment_round_trip(self):
        indptr = np.array([0, 2, 2, 5], dtype=np.int64)
        columns = np.array([1, 4, 0, 2, 9], dtype=np.int64)
        frame = encode_fragment(3, 1, indptr, columns)
        kind, payload, _ = decode_frame(frame)
        assert kind == KIND_FRAGMENT
        assert payload["shard"] == 3 and payload["attempt"] == 1
        np.testing.assert_array_equal(payload["indptr"], indptr)
        np.testing.assert_array_equal(payload["columns"], columns)

    def test_fragment_checksum_flip_detected(self):
        frame = bytearray(
            encode_fragment(
                0, 0, np.array([0, 3], dtype=np.int64),
                np.array([1, 2, 3], dtype=np.int64),
            )
        )
        frame[-1] ^= 0x01  # flip one bit in the last column word
        with pytest.raises(PayloadIntegrityError):
            decode_frame(bytes(frame))

    def test_fragment_refuses_inconsistent_csr(self):
        with pytest.raises(ProtocolError):
            encode_fragment(
                0, 0, np.array([0, 5], dtype=np.int64),
                np.array([1], dtype=np.int64),
            )

    def test_reduced_round_trip(self):
        sizes = np.array([7, 0, 3], dtype=np.int64)
        n1 = np.array([2, 1], dtype=np.int64)
        frame = encode_reduced(1, 2, sizes, n1, peak_bytes=4096)
        kind, payload, _ = decode_frame(frame)
        assert kind == KIND_REDUCED
        assert payload["shard"] == 1 and payload["attempt"] == 2
        assert payload["peak_bytes"] == 4096
        np.testing.assert_array_equal(payload["sizes"], sizes)
        np.testing.assert_array_equal(payload["n1"], n1)

    def test_reduced_checksum_flip_detected(self):
        frame = bytearray(
            encode_reduced(
                0, 0, np.array([5], dtype=np.int64),
                np.array([2], dtype=np.int64),
            )
        )
        frame[-9] ^= 0x10
        with pytest.raises(PayloadIntegrityError):
            decode_frame(bytes(frame))

    def test_worker_error_round_trip(self):
        kind, payload, _ = decode_frame(encode_worker_error("bad epsilon"))
        assert kind == KIND_WORKER_ERROR
        assert payload["message"] == "bad epsilon"

    def test_oversized_length_rejected_before_allocation(self):
        bogus = struct.pack("<BI", KIND_FRAGMENT, MAX_FRAME_PAYLOAD + 1)
        with pytest.raises(ProtocolError, match="wire limit"):
            decode_frame(bogus)


class TestMutateFrames:
    """Round trips and typed rejections of the streaming-ingest kinds."""

    def test_mutate_round_trip(self):
        inserts = np.array([[0, 3], [2, 1]], dtype=np.int64)
        deletes = np.array([[1, 1]], dtype=np.int64)
        frame = encode_mutate(0xBA5E, 0x7A26E7, inserts, deletes)
        kind, payload, rest = decode_frame(frame)
        assert kind == KIND_MUTATE
        assert payload["base_digest"] == 0xBA5E
        assert payload["target_digest"] == 0x7A26E7
        assert payload["checksum"] == delta_checksum(inserts, deletes)
        np.testing.assert_array_equal(payload["inserts"], inserts)
        np.testing.assert_array_equal(payload["deletes"], deletes)
        assert rest == b""

    def test_mutate_empty_sides(self):
        empty = np.empty((0, 2), dtype=np.int64)
        frame = encode_mutate(1, 2, empty, np.array([[4, 5]], dtype=np.int64))
        _, payload, _ = decode_frame(frame)
        assert payload["inserts"].shape == (0, 2)
        np.testing.assert_array_equal(payload["deletes"], [[4, 5]])

    def test_mutate_negative_endpoints_rejected(self):
        empty = np.empty((0, 2), dtype=np.int64)
        with pytest.raises(ProtocolError):
            encode_mutate(1, 2, np.array([[-1, 0]], dtype=np.int64), empty)

    def test_mutate_checksum_flip_detected(self):
        frame = bytearray(
            encode_mutate(
                1, 2,
                np.array([[0, 1]], dtype=np.int64),
                np.empty((0, 2), dtype=np.int64),
            )
        )
        frame[-1] ^= 0x40  # flip one bit in the last op word
        with pytest.raises(PayloadIntegrityError):
            decode_frame(bytes(frame))

    def test_mutate_header_op_count_mismatch_rejected(self):
        frame = bytearray(
            encode_mutate(
                1, 2,
                np.array([[0, 1], [2, 3]], dtype=np.int64),
                np.empty((0, 2), dtype=np.int64),
            )
        )
        with pytest.raises(ProtocolError):
            decode_frame(bytes(frame[:-16]))  # drop one edge, keep header

    def test_delta_ack_round_trip(self):
        for status in (DELTA_OK, DELTA_UNKNOWN_BASE, DELTA_DIGEST_MISMATCH):
            kind, payload, rest = decode_frame(encode_delta_ack(status, 0xF00D))
            assert kind == KIND_DELTA_ACK
            assert payload == {"status": status, "digest": 0xF00D}
            assert rest == b""

    def test_delta_ack_unknown_status_rejected(self):
        with pytest.raises(ProtocolError):
            encode_delta_ack(7, 0)
        bogus = struct.pack("<BI", KIND_DELTA_ACK, 9) + struct.pack("<BQ", 9, 1)
        with pytest.raises(ProtocolError):
            decode_frame(bogus)

    def test_oversized_mutate_length_rejected_before_allocation(self):
        bogus = struct.pack("<BI", KIND_MUTATE, MAX_FRAME_PAYLOAD + 1)
        with pytest.raises(ProtocolError, match="wire limit"):
            decode_frame(bogus)


# ----------------------------------------------------------------------
# Property fuzz: every frame kind must either round-trip exactly or be
# rejected with a typed error — never crash, never silently mis-decode.
# ----------------------------------------------------------------------
_WIRE_ERRORS = (ProtocolError, PayloadIntegrityError)

ids_arrays = st.lists(
    st.integers(min_value=0, max_value=2**62), min_size=0, max_size=64
).map(lambda xs: np.array(xs, dtype=np.int64))


@st.composite
def csr_fragments(draw):
    lengths = draw(
        st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=12)
    )
    indptr = np.zeros(len(lengths) + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    columns = draw(
        st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=int(indptr[-1]), max_size=int(indptr[-1]),
        )
    )
    return indptr, np.array(columns, dtype=np.int64)


@st.composite
def shard_specs(draw):
    n = draw(st.integers(min_value=0, max_value=24))
    vertices = np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=2**40), min_size=n, max_size=n
            )
        ),
        dtype=np.int64,
    )
    versions = None
    if draw(st.booleans()):
        versions = np.array(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=2**30),
                    min_size=n, max_size=n,
                )
            ),
            dtype=np.uint64,
        )
    ia = ib = None
    if n and draw(st.booleans()):
        m = draw(st.integers(min_value=0, max_value=16))
        slots = st.lists(
            st.integers(min_value=0, max_value=n - 1), min_size=m, max_size=m
        )
        ia = np.array(draw(slots), dtype=np.int64)
        ib = np.array(draw(slots), dtype=np.int64)
    return dict(
        shard=draw(st.integers(min_value=0, max_value=1000)),
        attempt=draw(st.integers(min_value=-1, max_value=5)),
        epoch=draw(st.integers(min_value=0, max_value=2**40)),
        entropy=draw(st.integers(min_value=0, max_value=2**62)),
        epsilon=draw(
            st.floats(
                min_value=1e-3, max_value=16.0,
                allow_nan=False, allow_infinity=False,
            )
        ),
        domain=draw(st.integers(min_value=0, max_value=2**40)),
        layer=draw(st.integers(min_value=0, max_value=1)),
        vertices=vertices,
        versions=versions,
        ia=ia,
        ib=ib,
        want_fragment=draw(st.booleans()),
        measure=draw(st.booleans()),
    )


@st.composite
def edge_deltas(draw):
    pairs = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**40),
            st.integers(min_value=0, max_value=2**40),
        ),
        min_size=0,
        max_size=24,
    )

    def arr(rows):
        return np.array(rows, dtype=np.int64).reshape(-1, 2)

    return arr(draw(pairs)), arr(draw(pairs))


class TestWireFuzz:
    @given(ids=ids_arrays)
    @settings(max_examples=60, deadline=None)
    def test_noisy_edges_round_trip(self, ids):
        kind, decoded, rest = decode_frame(encode_noisy_edges(ids))
        assert kind == KIND_NOISY_EDGES
        np.testing.assert_array_equal(decoded, ids)
        assert rest == b""

    @given(spec=shard_specs())
    @settings(max_examples=60, deadline=None)
    def test_shard_spec_round_trip(self, spec):
        _, decoded, rest = decode_frame(encode_shard_spec(**spec))
        assert rest == b""
        np.testing.assert_array_equal(decoded["vertices"], spec["vertices"])
        if spec["versions"] is None:
            assert decoded["versions"] is None
        else:
            np.testing.assert_array_equal(decoded["versions"], spec["versions"])
        if spec["ia"] is None or spec["ia"].size == 0:
            # Zero pairs and no pairs are the same wire statement.
            assert decoded["ia"] is None or decoded["ia"].size == 0
        else:
            np.testing.assert_array_equal(decoded["ia"], spec["ia"])
            np.testing.assert_array_equal(decoded["ib"], spec["ib"])
        for key in ("shard", "attempt", "epoch", "entropy", "domain", "layer",
                    "want_fragment", "measure"):
            assert decoded[key] == spec[key]
        assert decoded["epsilon"] == pytest.approx(spec["epsilon"])

    @given(frag=csr_fragments())
    @settings(max_examples=60, deadline=None)
    def test_fragment_round_trip(self, frag):
        indptr, columns = frag
        _, decoded, _ = decode_frame(encode_fragment(1, 0, indptr, columns))
        np.testing.assert_array_equal(decoded["indptr"], indptr)
        np.testing.assert_array_equal(decoded["columns"], columns)

    @given(frag=csr_fragments(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_truncation_always_rejected(self, frag, data):
        indptr, columns = frag
        frame = encode_fragment(1, 0, indptr, columns)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(_WIRE_ERRORS):
            decode_frame(frame[:cut])

    @given(frag=csr_fragments(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_column_byte_flip_always_detected(self, frag, data):
        indptr, columns = frag
        if columns.size == 0:
            return  # nothing to corrupt
        frame = bytearray(encode_fragment(1, 0, indptr, columns))
        col_start = len(frame) - columns.size * 8
        pos = data.draw(
            st.integers(min_value=col_start, max_value=len(frame) - 1)
        )
        flip = data.draw(st.integers(min_value=1, max_value=255))
        frame[pos] ^= flip
        with pytest.raises(_WIRE_ERRORS):
            decode_frame(bytes(frame))

    @given(
        sizes=ids_arrays, n1=ids_arrays, data=st.data()
    )
    @settings(max_examples=60, deadline=None)
    def test_reduced_round_trip_and_flip(self, sizes, n1, data):
        frame = encode_reduced(0, 0, sizes, n1)
        _, decoded, _ = decode_frame(frame)
        np.testing.assert_array_equal(decoded["sizes"], sizes)
        np.testing.assert_array_equal(decoded["n1"], n1)
        payload = sizes.size + n1.size
        if payload:
            corrupt = bytearray(frame)
            pos = data.draw(
                st.integers(
                    min_value=len(frame) - payload * 8,
                    max_value=len(frame) - 1,
                )
            )
            corrupt[pos] ^= data.draw(st.integers(min_value=1, max_value=255))
            with pytest.raises(_WIRE_ERRORS):
                decode_frame(bytes(corrupt))

    @given(delta=edge_deltas())
    @settings(max_examples=60, deadline=None)
    def test_mutate_round_trip(self, delta):
        inserts, deletes = delta
        _, decoded, rest = decode_frame(encode_mutate(3, 9, inserts, deletes))
        assert rest == b""
        np.testing.assert_array_equal(decoded["inserts"], inserts)
        np.testing.assert_array_equal(decoded["deletes"], deletes)

    @given(delta=edge_deltas(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_mutate_truncation_always_rejected(self, delta, data):
        inserts, deletes = delta
        frame = encode_mutate(3, 9, inserts, deletes)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(_WIRE_ERRORS):
            decode_frame(frame[:cut])

    @given(delta=edge_deltas(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_mutate_op_byte_flip_always_detected(self, delta, data):
        inserts, deletes = delta
        payload = inserts.size + deletes.size
        if payload == 0:
            return  # nothing to corrupt
        frame = bytearray(encode_mutate(3, 9, inserts, deletes))
        pos = data.draw(
            st.integers(min_value=len(frame) - payload * 8,
                        max_value=len(frame) - 1)
        )
        frame[pos] ^= data.draw(st.integers(min_value=1, max_value=255))
        with pytest.raises(_WIRE_ERRORS):
            decode_frame(bytes(frame))

    @given(
        kind=st.integers(min_value=0, max_value=255),
        length=st.integers(min_value=0, max_value=2**32 - 1),
        body=st.binary(max_size=256),
    )
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_headers_never_crash(self, kind, length, body):
        data = struct.pack("<BI", kind, length) + body
        try:
            decoded_kind, _, _ = decode_frame(data)
        except _WIRE_ERRORS:
            return
        assert decoded_kind == kind

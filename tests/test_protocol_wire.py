"""Tests for the wire format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.protocol.wire import (
    KIND_ESTIMATE,
    KIND_NOISY_DEGREE,
    KIND_NOISY_EDGES,
    decode_frame,
    encode_noisy_edges,
    encode_scalar,
    frame_overhead,
    payload_bytes,
)


class TestNoisyEdges:
    def test_round_trip(self):
        ids = np.array([3, 17, 99, 2**40], dtype=np.int64)
        frame = encode_noisy_edges(ids)
        kind, decoded, rest = decode_frame(frame)
        assert kind == KIND_NOISY_EDGES
        np.testing.assert_array_equal(decoded, ids)
        assert rest == b""

    def test_empty_list(self):
        frame = encode_noisy_edges(np.array([], dtype=np.int64))
        kind, decoded, _ = decode_frame(frame)
        assert kind == KIND_NOISY_EDGES
        assert decoded.size == 0

    def test_payload_bytes_matches_accounting(self):
        """The Fig. 10 model counts 8 bytes per id — and so does the wire."""
        ids = np.arange(25)
        frame = encode_noisy_edges(ids)
        assert payload_bytes(frame) == 25 * 8
        assert len(frame) == 25 * 8 + frame_overhead()

    def test_negative_ids_rejected(self):
        with pytest.raises(ProtocolError):
            encode_noisy_edges(np.array([-1]))


class TestScalars:
    @pytest.mark.parametrize("kind", [KIND_NOISY_DEGREE, KIND_ESTIMATE])
    def test_round_trip(self, kind):
        frame = encode_scalar(-12.3456789, kind)
        decoded_kind, value, rest = decode_frame(frame)
        assert decoded_kind == kind
        assert value == pytest.approx(-12.3456789)
        assert rest == b""

    def test_scalar_is_eight_bytes(self):
        frame = encode_scalar(1.0, KIND_ESTIMATE)
        assert payload_bytes(frame) == 8

    def test_invalid_kind_rejected(self):
        with pytest.raises(ProtocolError):
            encode_scalar(1.0, KIND_NOISY_EDGES)


class TestFraming:
    def test_concatenated_frames_stream(self):
        stream = (
            encode_noisy_edges(np.array([1, 2]))
            + encode_scalar(3.5, KIND_NOISY_DEGREE)
            + encode_scalar(7.0, KIND_ESTIMATE)
        )
        kinds = []
        while stream:
            kind, _, stream = decode_frame(stream)
            kinds.append(kind)
        assert kinds == [KIND_NOISY_EDGES, KIND_NOISY_DEGREE, KIND_ESTIMATE]

    def test_truncated_header(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"\x01")

    def test_truncated_payload(self):
        frame = encode_noisy_edges(np.array([1, 2, 3]))
        with pytest.raises(ProtocolError):
            decode_frame(frame[:-4])

    def test_unknown_kind(self):
        import struct

        bogus = struct.pack("<BI", 99, 0)
        with pytest.raises(ProtocolError):
            decode_frame(bogus)

    def test_misaligned_edge_payload(self):
        import struct

        bogus = struct.pack("<BI", KIND_NOISY_EDGES, 7) + b"\x00" * 7
        with pytest.raises(ProtocolError):
            decode_frame(bogus)

    def test_bad_scalar_length(self):
        import struct

        bogus = struct.pack("<BI", KIND_ESTIMATE, 4) + b"\x00" * 4
        with pytest.raises(ProtocolError):
            decode_frame(bogus)

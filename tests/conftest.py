"""Shared fixtures for the test suite, plus pinned hypothesis profiles."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.generators import random_bipartite

# CI pins the "ci" profile (HYPOTHESIS_PROFILE=ci) so property tests —
# including the chi-square statistical harness — replay the exact same
# examples on every run instead of flaking on a fresh random draw.
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def pytest_configure(config: pytest.Config) -> None:
    # The CI contract-suite job installs pytest-timeout and enforces these
    # limits; local runs without the plugin must stay warning-clean, so
    # the marker is registered here (inert when the plugin is absent).
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test wall-clock limit, enforced when the "
        "pytest-timeout plugin is installed (CI); inert without it",
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(20240611)


@pytest.fixture()
def tiny_graph() -> BipartiteGraph:
    """The paper's Fig. 1-style example: 2 upper query vertices sharing
    3 common lower neighbors out of a pool of 8."""
    edges = [
        (0, 0), (0, 1), (0, 3),            # u0 -> v0, v1, v3
        (1, 0), (1, 1), (1, 3), (1, 7),    # u1 -> v0, v1, v3, v7
        (2, 2), (2, 4),                    # an unrelated upper vertex
    ]
    return BipartiteGraph(3, 8, edges)


@pytest.fixture()
def small_graph() -> BipartiteGraph:
    return random_bipartite(60, 50, 500, rng=7)


@pytest.fixture()
def medium_graph() -> BipartiteGraph:
    return random_bipartite(300, 240, 2600, rng=11)


@pytest.fixture()
def query_layer() -> Layer:
    return Layer.UPPER

"""Tests for randomized response and the Laplace mechanism."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import PrivacyError
from repro.privacy.mechanisms import (
    LaplaceMechanism,
    RandomizedResponse,
    flip_probability,
)


class TestFlipProbability:
    def test_epsilon_one(self):
        assert flip_probability(1.0) == pytest.approx(1 / (1 + math.e))

    def test_always_below_half(self):
        for eps in (0.01, 0.5, 1, 2, 5, 10):
            assert 0 < flip_probability(eps) < 0.5

    def test_monotone_decreasing_in_epsilon(self):
        values = [flip_probability(e) for e in (0.5, 1.0, 2.0, 4.0)]
        assert values == sorted(values, reverse=True)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_epsilon(self, bad):
        with pytest.raises(PrivacyError):
            flip_probability(bad)


class TestRandomizedResponseBits:
    def test_output_is_binary(self, rng):
        rr = RandomizedResponse(1.0)
        bits = rng.integers(0, 2, size=1000)
        noisy = rr.perturb_bits(bits, rng)
        assert set(np.unique(noisy)) <= {0, 1}

    def test_flip_rate_matches_p(self, rng):
        rr = RandomizedResponse(1.0)
        bits = np.zeros(200_000, dtype=np.int8)
        noisy = rr.perturb_bits(bits, rng)
        rate = noisy.mean()
        p = rr.flip_probability
        tol = 5 * math.sqrt(p * (1 - p) / bits.size)
        assert abs(rate - p) < tol

    def test_large_epsilon_rarely_flips(self, rng):
        rr = RandomizedResponse(20.0)
        bits = np.ones(10_000, dtype=np.int8)
        noisy = rr.perturb_bits(bits, rng)
        assert noisy.sum() == pytest.approx(10_000, abs=5)

    def test_ones_flip_to_zero_at_same_rate(self, rng):
        rr = RandomizedResponse(1.0)
        bits = np.ones(200_000, dtype=np.int8)
        noisy = rr.perturb_bits(bits, rng)
        rate = 1.0 - noisy.mean()
        p = rr.flip_probability
        assert abs(rate - p) < 5 * math.sqrt(p * (1 - p) / bits.size)

    def test_non_binary_input_rejected(self, rng):
        rr = RandomizedResponse(1.0)
        with pytest.raises(PrivacyError):
            rr.perturb_bits(np.array([0, 1, 2]), rng)

    def test_empty_input(self, rng):
        rr = RandomizedResponse(1.0)
        assert rr.perturb_bits(np.array([], dtype=int), rng).size == 0

    def test_repr(self):
        assert "epsilon=2" in repr(RandomizedResponse(2.0))


class TestRandomizedResponseNeighborList:
    def test_output_sorted_unique_in_domain(self, rng):
        rr = RandomizedResponse(1.0)
        neighbors = np.array([2, 5, 9])
        noisy = rr.perturb_neighbor_list(neighbors, 50, rng)
        assert (np.diff(noisy) > 0).all()
        assert noisy.min() >= 0 and noisy.max() < 50

    def test_distribution_matches_dense_path(self, rng):
        """The sparse perturbation must match the dense row bit-flip law."""
        rr = RandomizedResponse(1.5)
        neighbors = np.array([0, 3, 7, 8])
        domain = 40
        trials = 4000
        sparse_sizes = np.empty(trials)
        sparse_kept = np.empty(trials)
        for t in range(trials):
            noisy = rr.perturb_neighbor_list(neighbors, domain, rng)
            sparse_sizes[t] = noisy.size
            sparse_kept[t] = np.isin(neighbors, noisy).sum()
        p = rr.flip_probability
        expected_size = rr.expected_noisy_degree(neighbors.size, domain)
        expected_kept = neighbors.size * (1 - p)
        assert sparse_sizes.mean() == pytest.approx(expected_size, rel=0.05)
        assert sparse_kept.mean() == pytest.approx(expected_kept, rel=0.05)

    def test_duplicate_neighbors_rejected(self, rng):
        rr = RandomizedResponse(1.0)
        with pytest.raises(PrivacyError):
            rr.perturb_neighbor_list(np.array([1, 1]), 10, rng)

    def test_out_of_domain_rejected(self, rng):
        rr = RandomizedResponse(1.0)
        with pytest.raises(PrivacyError):
            rr.perturb_neighbor_list(np.array([10]), 10, rng)

    def test_full_domain_neighborhood(self, rng):
        rr = RandomizedResponse(2.0)
        neighbors = np.arange(20)
        noisy = rr.perturb_neighbor_list(neighbors, 20, rng)
        assert noisy.size <= 20

    def test_empty_neighborhood(self, rng):
        rr = RandomizedResponse(2.0)
        noisy = rr.perturb_neighbor_list(np.array([], dtype=np.int64), 100, rng)
        # Expected size = 100 * p ~= 12.
        assert 0 <= noisy.size <= 100


class TestPhi:
    def test_phi_unbiased_for_one(self, rng):
        rr = RandomizedResponse(1.0)
        bits = np.ones(100_000, dtype=np.int8)
        noisy = rr.perturb_bits(bits, rng)
        est = rr.phi(noisy.astype(float))
        assert est.mean() == pytest.approx(1.0, abs=0.02)

    def test_phi_unbiased_for_zero(self, rng):
        rr = RandomizedResponse(1.0)
        bits = np.zeros(100_000, dtype=np.int8)
        noisy = rr.perturb_bits(bits, rng)
        est = rr.phi(noisy.astype(float))
        assert est.mean() == pytest.approx(0.0, abs=0.02)

    def test_phi_variance_formula(self, rng):
        rr = RandomizedResponse(1.0)
        bits = np.zeros(100_000, dtype=np.int8)
        noisy = rr.perturb_bits(bits, rng)
        est = rr.phi(noisy.astype(float))
        assert est.var() == pytest.approx(rr.phi_variance(), rel=0.05)

    def test_expected_noisy_degree(self):
        rr = RandomizedResponse(2.0)
        p = rr.flip_probability
        assert rr.expected_noisy_degree(10, 100) == pytest.approx(
            10 * (1 - p) + 90 * p
        )


class TestLaplaceMechanism:
    def test_scale(self):
        mech = LaplaceMechanism(2.0, 4.0)
        assert mech.scale == pytest.approx(2.0)

    def test_variance(self):
        mech = LaplaceMechanism(1.0, 1.0)
        assert mech.variance() == pytest.approx(2.0)

    def test_release_mean(self, rng):
        mech = LaplaceMechanism(1.0, 1.0)
        samples = np.array([mech.release(5.0, rng) for _ in range(20_000)])
        assert samples.mean() == pytest.approx(5.0, abs=5 * math.sqrt(2 / 20_000))

    def test_release_variance(self, rng):
        mech = LaplaceMechanism(0.5, 2.0)
        samples = mech.release_many(np.zeros(100_000), rng)
        assert samples.var() == pytest.approx(mech.variance(), rel=0.05)

    def test_release_many_shape(self, rng):
        mech = LaplaceMechanism(1.0, 1.0)
        out = mech.release_many(np.arange(12.0).reshape(3, 4), rng)
        assert out.shape == (3, 4)

    @pytest.mark.parametrize("bad_eps", [0.0, -1.0, float("nan")])
    def test_invalid_epsilon(self, bad_eps):
        with pytest.raises(PrivacyError):
            LaplaceMechanism(bad_eps, 1.0)

    @pytest.mark.parametrize("bad_sens", [0.0, -2.0, float("inf")])
    def test_invalid_sensitivity(self, bad_sens):
        with pytest.raises(PrivacyError):
            LaplaceMechanism(1.0, bad_sens)

    def test_repr(self):
        assert "sensitivity=3" in repr(LaplaceMechanism(1.0, 3.0))

"""Statistical correctness harness for the bulk RR path and served queries.

Three layers of evidence, all seeded so runs are reproducible:

1. **Distributional** — chi-square goodness-of-fit of the engine's bulk
   RR output (stacked kept-mask + geometric-gap complement sampling)
   against the enumerated per-bit RR law over small universes, and of the
   materialize/sketch pairwise ``N1`` samples against the exact
   4-binomial-convolution law.
2. **Cache determinism** — within one epoch a cache hit replays the
   stored draw bit for bit, whatever the engine's rng state.
3. **Moments** — over >= 200 served trials (fresh epoch each), the mean
   estimate sits inside the CI of the exact count and the empirical
   variance matches the paper's closed-form ``Var[f̃2]`` (Theorem 4), in
   both materialize and sketch modes.
"""

from __future__ import annotations

import asyncio
import math

import numpy as np
import pytest
from hypothesis import given, seed, settings
from hypothesis import strategies as st
from scipy import stats as sps

from repro.analysis.loss import oner_variance
from repro.engine.bulkrr import bulk_randomized_response, keyed_bulk_randomized_response
from repro.engine.core import BatchQueryEngine
from repro.engine.pairwise import pairwise_intersections
from repro.engine.sketch import sketch_pair_counts
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.generators import random_bipartite
from repro.graph.sampling import sample_query_pairs
from repro.privacy.mechanisms import flip_probability
from repro.protocol.session import ExecutionMode
from repro.serving import NoisyViewCache, QueryServer

MODES = (ExecutionMode.MATERIALIZE, ExecutionMode.SKETCH)
P_FLOOR = 1e-4  # a correct implementation fails a seeded run w.p. ~1e-4


def _chisquare_binned(observed: np.ndarray, expected: np.ndarray):
    """Chi-square GOF with low-expectation cells pooled into one bucket."""
    observed = np.asarray(observed, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    keep = expected >= 5.0
    obs = list(observed[keep])
    exp = list(expected[keep])
    if not keep.all():
        obs.append(observed[~keep].sum())
        exp.append(expected[~keep].sum())
    if len(obs) < 2:  # degenerate universe: nothing to test
        return None
    return sps.chisquare(obs, exp)


# ----------------------------------------------------------------------
# 1a. Bulk RR vs. the enumerated per-bit law
# ----------------------------------------------------------------------
@st.composite
def rr_universes(draw):
    domain = draw(st.integers(min_value=2, max_value=5))
    neighbors = draw(
        st.lists(st.integers(0, domain - 1), unique=True, max_size=domain)
    )
    epsilon = draw(st.sampled_from([0.8, 1.5, 2.5]))
    return domain, tuple(sorted(neighbors)), epsilon


class TestBulkRRLaw:
    @seed(20260727)
    @settings(max_examples=8, deadline=None)
    @given(rr_universes())
    def test_outcome_distribution_matches_enumeration(self, params):
        """Every one of the 2^domain report sets occurs at its exact
        product-of-per-bit-laws probability (kept-mask for true edges,
        geometric-gap complement pass for the flips)."""
        domain, neighbors, epsilon = params
        graph = BipartiteGraph(1, domain, [(0, v) for v in neighbors])
        trials = 4000
        rng = np.random.default_rng(
            abs(hash((domain, neighbors, epsilon))) % 2**32
        )
        # One bulk call with the vertex repeated = `trials` independent
        # draws of its noisy list, all through the vectorized path.
        indptr, columns = bulk_randomized_response(
            graph, Layer.UPPER, np.zeros(trials, dtype=np.int64), epsilon, rng
        )
        segment = np.repeat(np.arange(trials), np.diff(indptr))
        outcomes = np.bincount(
            segment, weights=2.0 ** columns, minlength=trials
        ).astype(np.int64)
        observed = np.bincount(outcomes, minlength=2**domain)

        p = flip_probability(epsilon)
        probs = np.empty(2**domain)
        for outcome in range(2**domain):
            prob = 1.0
            for column in range(domain):
                reported = (outcome >> column) & 1
                if column in neighbors:
                    prob *= (1.0 - p) if reported else p
                else:
                    prob *= p if reported else (1.0 - p)
            probs[outcome] = prob
        result = _chisquare_binned(observed, trials * probs)
        if result is not None:
            assert result.pvalue > P_FLOOR, (
                f"bulk RR deviates from the per-bit law "
                f"(p={result.pvalue:.2e}, universe={params})"
            )


# ----------------------------------------------------------------------
# 1a'. Keyed bulk RR (the bounded cache's Philox streams) vs. the same law
# ----------------------------------------------------------------------
class TestKeyedRRLaw:
    """The keyed-stream path must satisfy the identical per-bit RR law.

    Keyed draws are deterministic per ``(entropy, epoch, vertex)``, so
    independent samples come from *distinct vertices*: the graph holds
    ``trials`` upper vertices sharing one neighbor pattern, and one keyed
    block draw yields ``trials`` independent noisy lists.
    """

    TRIALS = 4000

    @pytest.mark.parametrize(
        "domain,neighbors,epsilon",
        [(3, (0, 2), 1.5), (4, (1,), 0.8), (5, (0, 1, 3, 4), 2.5)],
    )
    def test_outcome_distribution_matches_enumeration(
        self, domain, neighbors, epsilon
    ):
        trials = self.TRIALS
        graph = BipartiteGraph(
            trials, domain, [(t, v) for t in range(trials) for v in neighbors]
        )
        indptr, columns = keyed_bulk_randomized_response(
            graph, Layer.UPPER, np.arange(trials, dtype=np.int64), epsilon,
            entropy=abs(hash((domain, neighbors, epsilon))) % 2**62, epoch=1,
        )
        segment = np.repeat(np.arange(trials), np.diff(indptr))
        outcomes = np.bincount(
            segment, weights=2.0 ** columns, minlength=trials
        ).astype(np.int64)
        observed = np.bincount(outcomes, minlength=2**domain)

        p = flip_probability(epsilon)
        probs = np.empty(2**domain)
        for outcome in range(2**domain):
            prob = 1.0
            for column in range(domain):
                reported = (outcome >> column) & 1
                if column in neighbors:
                    prob *= (1.0 - p) if reported else p
                else:
                    prob *= p if reported else (1.0 - p)
            probs[outcome] = prob
        result = _chisquare_binned(observed, trials * probs)
        assert result is not None and result.pvalue > P_FLOOR, (
            f"keyed RR deviates from the per-bit law "
            f"(p={result.pvalue:.2e}, domain={domain}, neighbors={neighbors})"
        )


# ----------------------------------------------------------------------
# 1b. Pairwise N1 vs. the exact 4-binomial law, both execution paths
# ----------------------------------------------------------------------
def _n1_pmf(c2: int, da: int, db: int, domain: int, epsilon: float) -> np.ndarray:
    """Exact law of the noisy intersection: the convolution of the four
    candidate-class binomials (both report / a only / b only / neither)."""
    p = flip_probability(epsilon)
    q = 1.0 - p
    pmf = np.ones(1)
    for count, prob in (
        (c2, q * q),
        (da - c2, q * p),
        (db - c2, p * q),
        (domain - da - db + c2, p * p),
    ):
        pmf = np.convolve(pmf, sps.binom.pmf(np.arange(count + 1), count, prob))
    return pmf


@pytest.fixture(scope="module")
def overlap_graph():
    """Two upper vertices with da=8, db=6, c2=4 over a 30-wide pool."""
    edges = [(0, v) for v in range(8)] + [(1, v) for v in range(4)] + [
        (1, v) for v in range(20, 22)
    ]
    return BipartiteGraph(2, 30, edges)


class TestPairwiseN1Law:
    TRIALS = 3000
    EPSILON = 1.5

    def _expected(self, graph):
        return self.TRIALS * _n1_pmf(4, 8, 6, 30, self.EPSILON)

    def test_materialized_path(self, overlap_graph):
        rng = np.random.default_rng(404)
        vertices = np.tile([0, 1], self.TRIALS)
        indptr, columns = bulk_randomized_response(
            overlap_graph, Layer.UPPER, vertices, self.EPSILON, rng
        )
        ia = np.arange(0, 2 * self.TRIALS, 2)
        n1 = pairwise_intersections(
            indptr, columns, ia, ia + 1, 30, backend="merge"
        )
        expected = self._expected(overlap_graph)
        observed = np.bincount(n1, minlength=expected.size)[: expected.size]
        result = _chisquare_binned(observed, expected)
        assert result.pvalue > P_FLOOR, f"materialize N1 law off (p={result.pvalue:.2e})"

    def test_sketch_path(self, overlap_graph):
        rng = np.random.default_rng(405)
        n1, _, _ = sketch_pair_counts(
            overlap_graph,
            Layer.UPPER,
            np.array([0, 1]),
            np.zeros(self.TRIALS, dtype=np.int64),
            np.ones(self.TRIALS, dtype=np.int64),
            self.EPSILON,
            rng,
        )
        expected = self._expected(overlap_graph)
        observed = np.bincount(n1, minlength=expected.size)[: expected.size]
        result = _chisquare_binned(observed, expected)
        assert result.pvalue > P_FLOOR, f"sketch N1 law off (p={result.pvalue:.2e})"


# ----------------------------------------------------------------------
# 2. Cache hits replay the stored draw bit for bit
# ----------------------------------------------------------------------
class TestCacheBitIdentity:
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_repeat_batch_is_bit_identical_despite_fresh_rng(self, mode):
        graph = random_bipartite(40, 30, 320, rng=5)
        pairs = sample_query_pairs(graph, Layer.UPPER, 12, rng=3)
        cache = NoisyViewCache(graph, Layer.UPPER, 2.0, mode=mode)
        engine = BatchQueryEngine(mode=mode)
        first = engine.estimate_pairs(graph, Layer.UPPER, pairs, rng=1, cache=cache)
        second = engine.estimate_pairs(graph, Layer.UPPER, pairs, rng=2, cache=cache)
        np.testing.assert_array_equal(
            first.noisy_intersections, second.noisy_intersections
        )
        np.testing.assert_array_equal(first.noisy_unions, second.noisy_unions)
        np.testing.assert_array_equal(first.values, second.values)
        assert second.details["cache"]["misses"] == 0
        assert second.details["cache"]["charged_vertices"] == 0
        assert second.upload_bytes == 0

    def test_sketch_cache_is_symmetric_in_pair_order(self):
        graph = random_bipartite(30, 25, 200, rng=11)
        cache = NoisyViewCache(
            graph, Layer.UPPER, 2.0, mode=ExecutionMode.SKETCH
        )
        engine = BatchQueryEngine(mode=ExecutionMode.SKETCH)
        from repro.graph.sampling import QueryPair

        ab = engine.estimate_pairs(
            graph, Layer.UPPER, [QueryPair(Layer.UPPER, 3, 7)], rng=1, cache=cache
        )
        ba = engine.estimate_pairs(
            graph, Layer.UPPER, [QueryPair(Layer.UPPER, 7, 3)], rng=2, cache=cache
        )
        assert float(ab.values[0]) == float(ba.values[0])
        assert ba.details["cache"]["hits"] == 1

    def test_rotation_redraws(self):
        graph = random_bipartite(40, 200, 900, rng=6)
        pairs = sample_query_pairs(graph, Layer.UPPER, 10, rng=2)
        cache = NoisyViewCache(
            graph, Layer.UPPER, 2.0, mode=ExecutionMode.MATERIALIZE
        )
        engine = BatchQueryEngine(mode=ExecutionMode.MATERIALIZE)
        rng = np.random.default_rng(8)
        first = engine.estimate_pairs(graph, Layer.UPPER, pairs, rng=rng, cache=cache)
        cache.rotate()
        second = engine.estimate_pairs(graph, Layer.UPPER, pairs, rng=rng, cache=cache)
        # 200-wide noisy lists over 10 pairs: identical redraws are
        # astronomically unlikely, so a fresh epoch must change something.
        assert not np.array_equal(first.noisy_intersections, second.noisy_intersections) or (
            not np.array_equal(first.noisy_unions, second.noisy_unions)
        )


# ----------------------------------------------------------------------
# 3. Served moments: unbiased mean, paper's closed-form variance
# ----------------------------------------------------------------------
def _serve_trials(graph, pair, mode, trials, epsilon, server_seed) -> np.ndarray:
    async def run():
        values = []
        async with QueryServer(
            graph, Layer.UPPER, epsilon, mode=mode, rng=server_seed
        ) as server:
            for _ in range(trials):
                estimate = await server.query(pair[0], pair[1])
                values.append(estimate.value)
                server.rotate_epoch()  # each trial draws a fresh epoch view
        return np.array(values)

    return asyncio.run(run())


class TestServedMoments:
    TRIALS = 240
    EPSILON = 2.0

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_unbiased_mean_and_theorem4_variance(self, mode):
        graph = random_bipartite(50, 40, 420, rng=9)
        degrees = graph.degrees(Layer.UPPER)
        u, w = map(int, np.argsort(degrees)[-2:])
        exact = graph.count_common_neighbors(Layer.UPPER, u, w)
        values = _serve_trials(
            graph, (u, w), mode, self.TRIALS, self.EPSILON, server_seed=77
        )
        assert values.size == self.TRIALS

        variance = oner_variance(
            self.EPSILON, 40, int(degrees[u]), int(degrees[w])
        )
        # Mean within a 4.5-sigma CI of the exact count...
        standard_error = math.sqrt(variance / self.TRIALS)
        assert abs(values.mean() - exact) < 4.5 * standard_error, (
            f"served mean {values.mean():.2f} vs exact {exact} "
            f"(SE {standard_error:.3f}, mode={mode.value})"
        )
        # ...and empirical variance within a generous band of the exact
        # closed form (relative SE of the sample variance at n=240 is
        # ~9%; the band is ~5 sigma wide on each side).
        ratio = values.var(ddof=1) / variance
        assert 0.55 < ratio < 1.6, (
            f"served variance off the closed form by x{ratio:.2f} "
            f"(mode={mode.value})"
        )


# ----------------------------------------------------------------------
# 3b. Post-mutation moments, stratified by degree
# ----------------------------------------------------------------------
class TestDegreeStratifiedAfterMutation:
    """A streaming burst must not bend the estimator's error law.

    One random mutation burst is applied through the server and rotated
    in incrementally (only the dirty vertices redraw). The served
    estimates on the *mutated* snapshot must then match Theorem 4's
    closed-form ``Var[f̃2]`` — evaluated at the post-mutation degrees —
    in every degree stratum, low and high alike. A bug that let stale
    pre-mutation draws leak into post-mutation queries would shift the
    mean; one that mixed epochs would inflate the variance.
    """

    TRIALS = 220
    EPSILON = 2.0

    def test_stratified_accuracy_after_burst(self):
        from repro.serving import sample_mutation_batch

        graph = random_bipartite(60, 40, 600, rng=15)

        async def run():
            async with QueryServer(
                graph, Layer.UPPER, self.EPSILON,
                mode=ExecutionMode.MATERIALIZE, rng=91,
            ) as server:
                inserts, deletes = sample_mutation_batch(
                    server.graph, np.random.default_rng(3), ops=24
                )
                server.mutate(inserts=inserts, deletes=deletes)
                server.rotate_epoch()
                assert server.cache.stats.incremental_rotations == 1
                mutated = server.graph
                degrees = mutated.degrees(Layer.UPPER)
                order = np.argsort(degrees)
                strata = {
                    "low": (int(order[0]), int(order[1])),
                    "high": (int(order[-1]), int(order[-2])),
                }
                results = {}
                for name, (u, w) in strata.items():
                    values = []
                    for _ in range(self.TRIALS):
                        estimate = await server.query(u, w)
                        values.append(estimate.value)
                        server.rotate_epoch()
                    results[name] = (u, w, np.array(values))
                return mutated, degrees, results

        mutated, degrees, results = asyncio.run(run())
        assert mutated is not graph  # the burst really swapped snapshots
        for name, (u, w, values) in results.items():
            exact = mutated.count_common_neighbors(Layer.UPPER, u, w)
            variance = oner_variance(
                self.EPSILON, 40, int(degrees[u]), int(degrees[w])
            )
            standard_error = math.sqrt(variance / self.TRIALS)
            assert abs(values.mean() - exact) < 4.5 * standard_error, (
                f"{name}-degree stratum mean {values.mean():.2f} vs exact "
                f"{exact} (SE {standard_error:.3f}) after mutation burst"
            )
            ratio = values.var(ddof=1) / variance
            assert 0.5 < ratio < 1.7, (
                f"{name}-degree stratum variance off the closed form "
                f"by x{ratio:.2f} after mutation burst"
            )


# ----------------------------------------------------------------------
# 4. Streaming spend: the accountant's closed form under adversarial churn
# ----------------------------------------------------------------------
class TestStreamingSpendAccounting:
    """Per-vertex spend under an adversarial repeated-update sequence.

    The incremental-rotation contract in budget terms: a vertex's
    lifetime spend is ``eps x (1 + number of incremental rotations in
    which it was dirty and then re-served)`` — the initial charge plus
    one recharge per fresh keyed stream. Clean vertices replay their
    resident streams across every rotation, charge-free, however many
    epochs pass. The sequence is adversarial two ways: one vertex's
    membership is flipped every single round (maximum recharge rate),
    while another is "updated" every round with an insert+delete pair
    that cancels inside the epoch — net nothing, so it must stay as flat
    as a vertex never touched at all.
    """

    EPSILON = 2.0
    ROUNDS = 5
    N_UP, N_LO = 24, 20

    def test_lifetime_spend_matches_closed_form(self):
        graph = random_bipartite(self.N_UP, self.N_LO, 140, rng=19)
        churn = next(  # absent edge on vertex 0: flipped every round
            (0, l) for l in range(self.N_LO) if not graph.has_edge(0, l)
        )
        decoy = next(  # absent edge on vertex 7: cancelled every round
            (7, l) for l in range(self.N_LO) if not graph.has_edge(7, l)
        )
        pairs = [(v, v + 1) for v in range(0, self.N_UP, 2)]

        async def run():
            recharges = np.zeros(self.N_UP, dtype=np.int64)
            async with QueryServer(
                graph, Layer.UPPER, self.EPSILON,
                mode=ExecutionMode.MATERIALIZE, rng=13,
            ) as server:
                for u, w in pairs:  # epoch 0: everyone charged once
                    await server.query(u, w)
                for r in range(self.ROUNDS):
                    present = server.graph.has_edge(*churn)
                    server.mutate(
                        inserts=([decoy] if present else [churn, decoy]),
                        deletes=([churn, decoy] if present else [decoy]),
                    )
                    server.rotate_epoch()
                    assert server.cache.last_rotation["incremental"]
                    dirty = server.cache.last_rotation["dirty_vertices"]
                    for u, w in pairs:  # re-serve the whole layer
                        await server.query(u, w)
                    recharges[dirty] += 1
                spend = np.array(
                    [
                        server.accountant.lifetime_spent(Layer.UPPER, v)
                        for v in range(self.N_UP)
                    ]
                )
                peak = server.accountant.max_epoch_spent()
            return recharges, spend, peak

        recharges, spend, peak = asyncio.run(run())
        # The flipped vertex recharged every round; the cancelled-update
        # decoy (and everyone else) never did.
        assert recharges[0] == self.ROUNDS
        assert recharges[1:].sum() == 0
        # Closed form, vertex by vertex.
        np.testing.assert_allclose(
            spend, self.EPSILON * (1 + recharges), rtol=1e-12
        )
        # No epoch ever charged a vertex more than once.
        assert peak == pytest.approx(self.EPSILON)

"""Tests for run manifests and the overlap-stratified extension."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.experiments.ext_overlap import run_ext_overlap
from repro.experiments.manifest import RunManifest, load_manifest, save_manifest


class TestManifest:
    def _manifest(self) -> RunManifest:
        return RunManifest.capture(
            "fig6a",
            seed=7,
            epsilon=2.0,
            num_pairs=100,
            datasets=("RM", "AC"),
            algorithms=("naive", "multir-ds"),
            max_edges=150_000,
            notes="demo",
        )

    def test_capture_stamps_version(self):
        import repro

        manifest = self._manifest()
        assert manifest.library_version == repro.__version__
        assert manifest.extra == {"notes": "demo"}

    def test_json_round_trip(self):
        manifest = self._manifest()
        restored = RunManifest.from_json(manifest.to_json())
        assert restored == manifest

    def test_schema_version_embedded(self):
        payload = json.loads(self._manifest().to_json())
        assert payload["schema_version"] == 1

    def test_unknown_schema_rejected(self):
        payload = json.loads(self._manifest().to_json())
        payload["schema_version"] = 99
        with pytest.raises(ReproError):
            RunManifest.from_json(json.dumps(payload))

    def test_save_load(self, tmp_path):
        manifest = self._manifest()
        path = save_manifest(manifest, tmp_path / "run" / "manifest.json")
        assert path.exists()
        assert load_manifest(path) == manifest


class TestExtOverlap:
    def test_panel_shape(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.datasets.cache import clear_memory_cache

        clear_memory_cache()
        panel = run_ext_overlap(
            dataset="RM", num_pairs=6, max_edges=12_000, rng=3,
            thresholds=(0, 1),
        )
        clear_memory_cache()
        assert panel.x_values == [0, 1]
        assert set(panel.series) == {"oner", "multir-ss", "multir-ds", "central-dp"}
        for values in panel.series.values():
            assert all(v >= 0 for v in values)

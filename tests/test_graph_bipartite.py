"""Tests for the core bipartite graph structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph, Layer


class TestLayer:
    def test_opposite_upper(self):
        assert Layer.UPPER.opposite() is Layer.LOWER

    def test_opposite_lower(self):
        assert Layer.LOWER.opposite() is Layer.UPPER

    def test_opposite_is_involution(self):
        for layer in Layer:
            assert layer.opposite().opposite() is layer


class TestConstruction:
    def test_empty_graph(self):
        g = BipartiteGraph(0, 0)
        assert g.num_upper == 0
        assert g.num_lower == 0
        assert g.num_edges == 0

    def test_no_edges(self):
        g = BipartiteGraph(3, 4)
        assert g.num_edges == 0
        assert g.degree(Layer.UPPER, 2) == 0

    def test_basic_counts(self, tiny_graph):
        assert tiny_graph.num_upper == 3
        assert tiny_graph.num_lower == 8
        assert tiny_graph.num_edges == 9
        assert tiny_graph.num_vertices == 11

    def test_duplicate_edges_collapse(self):
        g = BipartiteGraph(2, 2, [(0, 0), (0, 0), (1, 1), (1, 1), (1, 1)])
        assert g.num_edges == 2

    def test_edges_from_list_of_tuples(self):
        g = BipartiteGraph(2, 3, [(0, 2), (1, 0)])
        assert g.has_edge(0, 2)
        assert g.has_edge(1, 0)

    def test_edges_from_ndarray(self):
        arr = np.array([[0, 1], [1, 2]])
        g = BipartiteGraph(2, 3, arr)
        assert g.num_edges == 2

    def test_float_integral_edges_accepted(self):
        g = BipartiteGraph(2, 2, np.array([[0.0, 1.0]]))
        assert g.has_edge(0, 1)

    def test_non_integral_edges_rejected(self):
        with pytest.raises(GraphError):
            BipartiteGraph(2, 2, np.array([[0.5, 1.0]]))

    def test_negative_layer_sizes_rejected(self):
        with pytest.raises(GraphError):
            BipartiteGraph(-1, 2)

    def test_upper_endpoint_out_of_range(self):
        with pytest.raises(GraphError):
            BipartiteGraph(2, 2, [(2, 0)])

    def test_lower_endpoint_out_of_range(self):
        with pytest.raises(GraphError):
            BipartiteGraph(2, 2, [(0, 2)])

    def test_negative_endpoint_rejected(self):
        with pytest.raises(GraphError):
            BipartiteGraph(2, 2, [(-1, 0)])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(GraphError):
            BipartiteGraph(2, 2, np.array([[0, 1, 2]]))

    def test_edges_array_readonly(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.edges[0, 0] = 5


class TestAdjacency:
    def test_neighbors_sorted(self, tiny_graph):
        n = tiny_graph.neighbors(Layer.UPPER, 1)
        assert list(n) == [0, 1, 3, 7]

    def test_neighbors_lower_layer(self, tiny_graph):
        assert list(tiny_graph.neighbors(Layer.LOWER, 0)) == [0, 1]
        assert list(tiny_graph.neighbors(Layer.LOWER, 7)) == [1]

    def test_neighbors_isolated_vertex(self, tiny_graph):
        assert tiny_graph.neighbors(Layer.LOWER, 5).size == 0

    def test_degree(self, tiny_graph):
        assert tiny_graph.degree(Layer.UPPER, 0) == 3
        assert tiny_graph.degree(Layer.UPPER, 1) == 4
        assert tiny_graph.degree(Layer.LOWER, 3) == 2

    def test_degrees_matches_degree(self, small_graph):
        for layer in Layer:
            degs = small_graph.degrees(layer)
            for v in range(small_graph.layer_size(layer)):
                assert degs[v] == small_graph.degree(layer, v)

    def test_degree_sums_equal_edges(self, small_graph):
        assert small_graph.degrees(Layer.UPPER).sum() == small_graph.num_edges
        assert small_graph.degrees(Layer.LOWER).sum() == small_graph.num_edges

    def test_max_degree(self, tiny_graph):
        assert tiny_graph.max_degree(Layer.UPPER) == 4

    def test_max_degree_empty_layer(self):
        assert BipartiteGraph(0, 3).max_degree(Layer.UPPER) == 0

    def test_average_degree(self, tiny_graph):
        assert tiny_graph.average_degree(Layer.UPPER) == pytest.approx(3.0)

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 3)
        assert not tiny_graph.has_edge(0, 7)
        assert not tiny_graph.has_edge(2, 0)

    def test_vertex_out_of_range(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.neighbors(Layer.UPPER, 3)
        with pytest.raises(GraphError):
            tiny_graph.degree(Layer.LOWER, 8)
        with pytest.raises(GraphError):
            tiny_graph.degree(Layer.UPPER, -1)


class TestCommonNeighbors:
    def test_paper_example(self, tiny_graph):
        # u0 and u1 share v0, v1, v3 — the Fig. 1 configuration.
        assert tiny_graph.count_common_neighbors(Layer.UPPER, 0, 1) == 3
        assert list(tiny_graph.common_neighbors(Layer.UPPER, 0, 1)) == [0, 1, 3]

    def test_no_common_neighbors(self, tiny_graph):
        assert tiny_graph.count_common_neighbors(Layer.UPPER, 0, 2) == 0

    def test_symmetry(self, small_graph):
        for a, b in [(0, 1), (5, 9), (20, 40)]:
            assert small_graph.count_common_neighbors(
                Layer.UPPER, a, b
            ) == small_graph.count_common_neighbors(Layer.UPPER, b, a)

    def test_lower_layer_queries(self, tiny_graph):
        # v0 and v1 are both adjacent to u0 and u1.
        assert tiny_graph.count_common_neighbors(Layer.LOWER, 0, 1) == 2

    def test_brute_force_equivalence(self, small_graph):
        rng = np.random.default_rng(1)
        for _ in range(20):
            a, b = rng.choice(small_graph.num_upper, size=2, replace=False)
            expected = len(
                set(map(int, small_graph.neighbors(Layer.UPPER, a)))
                & set(map(int, small_graph.neighbors(Layer.UPPER, b)))
            )
            assert small_graph.count_common_neighbors(Layer.UPPER, a, b) == expected

    def test_union_size(self, tiny_graph):
        assert tiny_graph.neighborhood_union_size(Layer.UPPER, 0, 1) == 4

    def test_jaccard(self, tiny_graph):
        assert tiny_graph.jaccard(Layer.UPPER, 0, 1) == pytest.approx(3 / 4)

    def test_jaccard_zero_union(self):
        g = BipartiteGraph(2, 2)
        assert g.jaccard(Layer.UPPER, 0, 1) == 0.0


class TestDerivedGraphs:
    def test_induced_subgraph_keep_all(self, tiny_graph):
        sub = tiny_graph.induced_subgraph(
            np.arange(tiny_graph.num_upper), np.arange(tiny_graph.num_lower)
        )
        assert sub == tiny_graph

    def test_induced_subgraph_relabels(self, tiny_graph):
        sub = tiny_graph.induced_subgraph([0, 1], [0, 1, 3])
        assert sub.num_upper == 2
        assert sub.num_lower == 3
        # v3 becomes index 2; u0/u1 keep both shared neighbors v0, v1, v3.
        assert sub.count_common_neighbors(Layer.UPPER, 0, 1) == 3

    def test_induced_subgraph_empty_selection(self, tiny_graph):
        sub = tiny_graph.induced_subgraph([], [])
        assert sub.num_edges == 0
        assert sub.num_vertices == 0

    def test_induced_subgraph_out_of_range(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.induced_subgraph([99], [0])

    def test_induced_subgraph_edge_subset(self, small_graph, rng):
        upper = rng.choice(small_graph.num_upper, 30, replace=False)
        lower = rng.choice(small_graph.num_lower, 25, replace=False)
        sub = small_graph.induced_subgraph(upper, lower)
        assert sub.num_edges <= small_graph.num_edges
        assert sub.num_upper == 30
        assert sub.num_lower == 25

    def test_to_networkx(self, tiny_graph):
        g = tiny_graph.to_networkx()
        assert g.number_of_nodes() == tiny_graph.num_vertices
        assert g.number_of_edges() == tiny_graph.num_edges
        assert g.has_edge(("u", 0), ("l", 3))


class TestDunder:
    def test_equality(self, tiny_graph):
        clone = BipartiteGraph(3, 8, tiny_graph.edges)
        assert clone == tiny_graph

    def test_inequality_different_edges(self, tiny_graph):
        other = BipartiteGraph(3, 8, [(0, 0)])
        assert other != tiny_graph

    def test_equality_non_graph(self, tiny_graph):
        assert tiny_graph != "not a graph"

    def test_iter_edges(self, tiny_graph):
        assert set(tiny_graph) == {tuple(e) for e in tiny_graph.edges}

    def test_repr(self, tiny_graph):
        assert "BipartiteGraph" in repr(tiny_graph)
        assert "m=9" in repr(tiny_graph)

    def test_density(self, tiny_graph):
        assert tiny_graph.density() == pytest.approx(9 / 24)

    def test_density_degenerate(self):
        assert BipartiteGraph(0, 5).density() == 0.0

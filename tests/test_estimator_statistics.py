"""Statistical validation: unbiasedness and variance against the theory.

These are the scientifically load-bearing tests — they verify the paper's
Theorems 1, 3, 4, 6 and 8 empirically on a controlled graph. Tolerances
are CLT-based with wide safety factors and fixed seeds, so failures signal
real bugs rather than unlucky draws.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.loss import (
    double_source_variance,
    naive_expectation,
    naive_variance,
    oner_variance,
    single_source_variance,
)
from repro.analysis.optimizer import optimize_double_source
from repro.estimators.registry import get_estimator
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.generators import random_bipartite
from repro.privacy.rng import spawn_rngs
from repro.protocol.session import ExecutionMode

EPSILON = 2.0
TRIALS = 6000


@pytest.fixture(scope="module")
def stat_graph() -> BipartiteGraph:
    return random_bipartite(80, 120, 1200, rng=2024)


@pytest.fixture(scope="module")
def query(stat_graph):
    layer = Layer.UPPER
    degrees = stat_graph.degrees(layer)
    u = int(np.argmax(degrees))
    w = int(np.argsort(degrees)[degrees.size // 2])
    assert u != w
    return layer, u, w


def _sample(stat_graph, query, name, trials=TRIALS, epsilon=EPSILON, **kwargs):
    layer, u, w = query
    estimator = get_estimator(name, **kwargs)
    rngs = spawn_rngs(777, trials)
    return np.array(
        [
            estimator.estimate(
                stat_graph, layer, u, w, epsilon, rng=rngs[t],
                mode=ExecutionMode.SKETCH,
            ).value
            for t in range(trials)
        ]
    )


def _context(stat_graph, query):
    layer, u, w = query
    return {
        "c2": stat_graph.count_common_neighbors(layer, u, w),
        "du": stat_graph.degree(layer, u),
        "dw": stat_graph.degree(layer, w),
        "n_opp": stat_graph.layer_size(layer.opposite()),
    }


def _mean_tolerance(variance: float, trials: int) -> float:
    return 5.0 * math.sqrt(variance / trials)


class TestNaiveMoments:
    def test_mean_matches_theorem(self, stat_graph, query):
        ctx = _context(stat_graph, query)
        samples = _sample(stat_graph, query, "naive")
        expected = naive_expectation(
            EPSILON, ctx["n_opp"], ctx["du"], ctx["dw"], ctx["c2"]
        )
        var = naive_variance(EPSILON, ctx["n_opp"], ctx["du"], ctx["dw"], ctx["c2"])
        assert samples.mean() == pytest.approx(
            expected, abs=_mean_tolerance(var, samples.size)
        )

    def test_bias_is_positive_and_large(self, stat_graph, query):
        """The motivating over-count: Naive sits far right of the truth."""
        ctx = _context(stat_graph, query)
        samples = _sample(stat_graph, query, "naive", trials=2000)
        assert samples.mean() > ctx["c2"] + 1.0

    def test_variance_matches_formula(self, stat_graph, query):
        ctx = _context(stat_graph, query)
        samples = _sample(stat_graph, query, "naive")
        expected = naive_variance(
            EPSILON, ctx["n_opp"], ctx["du"], ctx["dw"], ctx["c2"]
        )
        assert samples.var(ddof=1) == pytest.approx(expected, rel=0.15)


class TestOneRMoments:
    def test_unbiased(self, stat_graph, query):
        ctx = _context(stat_graph, query)
        samples = _sample(stat_graph, query, "oner")
        var = oner_variance(EPSILON, ctx["n_opp"], ctx["du"], ctx["dw"])
        assert samples.mean() == pytest.approx(
            ctx["c2"], abs=_mean_tolerance(var, samples.size)
        )

    def test_variance_matches_theorem4(self, stat_graph, query):
        ctx = _context(stat_graph, query)
        samples = _sample(stat_graph, query, "oner")
        expected = oner_variance(EPSILON, ctx["n_opp"], ctx["du"], ctx["dw"])
        assert samples.var(ddof=1) == pytest.approx(expected, rel=0.15)


class TestMultiRSSMoments:
    def test_unbiased(self, stat_graph, query):
        ctx = _context(stat_graph, query)
        samples = _sample(stat_graph, query, "multir-ss")
        var = single_source_variance(EPSILON / 2, EPSILON / 2, ctx["du"])
        assert samples.mean() == pytest.approx(
            ctx["c2"], abs=_mean_tolerance(var, samples.size)
        )

    def test_variance_matches_theorem6(self, stat_graph, query):
        ctx = _context(stat_graph, query)
        samples = _sample(stat_graph, query, "multir-ss")
        expected = single_source_variance(EPSILON / 2, EPSILON / 2, ctx["du"])
        assert samples.var(ddof=1) == pytest.approx(expected, rel=0.15)

    def test_source_w_variance_uses_dw(self, stat_graph, query):
        ctx = _context(stat_graph, query)
        samples = _sample(stat_graph, query, "multir-ss", source="w")
        expected = single_source_variance(EPSILON / 2, EPSILON / 2, ctx["dw"])
        assert samples.var(ddof=1) == pytest.approx(expected, rel=0.15)


class TestMultiRDSMoments:
    def test_basic_unbiased(self, stat_graph, query):
        ctx = _context(stat_graph, query)
        samples = _sample(stat_graph, query, "multir-ds-basic")
        var = double_source_variance(
            EPSILON / 2, EPSILON / 2, 0.5, ctx["du"], ctx["dw"]
        )
        assert samples.mean() == pytest.approx(
            ctx["c2"], abs=_mean_tolerance(var, samples.size)
        )

    def test_basic_variance_matches_theorem8(self, stat_graph, query):
        ctx = _context(stat_graph, query)
        samples = _sample(stat_graph, query, "multir-ds-basic")
        expected = double_source_variance(
            EPSILON / 2, EPSILON / 2, 0.5, ctx["du"], ctx["dw"]
        )
        assert samples.var(ddof=1) == pytest.approx(expected, rel=0.15)

    def test_full_ds_unbiased(self, stat_graph, query):
        ctx = _context(stat_graph, query)
        samples = _sample(stat_graph, query, "multir-ds")
        # Loose bound on the sampling error via the basic variant's variance.
        var = double_source_variance(
            EPSILON / 2, EPSILON / 2, 0.5, ctx["du"], ctx["dw"]
        )
        assert samples.mean() == pytest.approx(
            ctx["c2"], abs=2 * _mean_tolerance(var, samples.size)
        )

    def test_star_variance_matches_prediction(self, stat_graph, query):
        ctx = _context(stat_graph, query)
        samples = _sample(stat_graph, query, "multir-ds-star")
        alloc = optimize_double_source(EPSILON, ctx["du"], ctx["dw"], eps0=0.0)
        assert samples.var(ddof=1) == pytest.approx(alloc.predicted_loss, rel=0.15)

    def test_star_beats_basic_on_imbalanced_pair(self, stat_graph):
        """Theorem 9 in action: the optimized weighting wins under imbalance."""
        layer = Layer.UPPER
        degrees = stat_graph.degrees(layer)
        heavy = int(np.argmax(degrees))
        eligible = np.flatnonzero(degrees >= 1)
        light = int(eligible[np.argmin(degrees[eligible])])
        if light == heavy:
            light = int(eligible[1])
        query = (layer, heavy, light)
        star = _sample(stat_graph, query, "multir-ds-star", trials=4000)
        basic = _sample(stat_graph, query, "multir-ds-basic", trials=4000)
        true = stat_graph.count_common_neighbors(layer, heavy, light)
        star_l2 = ((star - true) ** 2).mean()
        basic_l2 = ((basic - true) ** 2).mean()
        assert star_l2 < basic_l2


class TestCrossAlgorithmOrdering:
    """The L2-loss hierarchy of the paper's Table 3 on a real workload."""

    def test_oner_beats_naive(self, stat_graph, query):
        ctx = _context(stat_graph, query)
        naive = _sample(stat_graph, query, "naive", trials=2500)
        oner = _sample(stat_graph, query, "oner", trials=2500)
        naive_l2 = ((naive - ctx["c2"]) ** 2).mean()
        oner_l2 = ((oner - ctx["c2"]) ** 2).mean()
        assert oner_l2 < naive_l2

    def test_multir_beats_oner(self):
        """MultiR-SS wins when the candidate pool n1 dwarfs the degrees —
        the regime of every real dataset in the paper (OneR's variance
        carries the n1 factor, MultiR-SS's only the degree)."""
        graph = random_bipartite(60, 4000, 3000, rng=31)
        query = (Layer.UPPER, 0, 1)
        c2 = graph.count_common_neighbors(Layer.UPPER, 0, 1)
        oner = _sample(graph, query, "oner", trials=2500)
        ss = _sample(graph, query, "multir-ss", trials=2500)
        oner_l2 = ((oner - c2) ** 2).mean()
        ss_l2 = ((ss - c2) ** 2).mean()
        assert ss_l2 < oner_l2

    def test_error_decreases_with_epsilon(self, stat_graph, query):
        ctx = _context(stat_graph, query)
        losses = []
        for eps in (1.0, 2.0, 3.0):
            samples = _sample(stat_graph, query, "multir-ss", trials=2500, epsilon=eps)
            losses.append(((samples - ctx["c2"]) ** 2).mean())
        assert losses[0] > losses[1] > losses[2]

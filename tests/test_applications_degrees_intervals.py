"""Tests for degree publication and the evaluation confidence intervals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.intervals import interval_for_result, predicted_variance
from repro.applications.degrees import (
    noisy_degree_histogram,
    publish_noisy_degrees,
)
from repro.errors import PrivacyError, ReproError
from repro.estimators.registry import get_estimator
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.privacy.rng import spawn_rngs
from repro.protocol.session import ExecutionMode


class TestDegreePublication:
    def test_shape(self, small_graph):
        pub = publish_noisy_degrees(small_graph, Layer.UPPER, 1.0, rng=1)
        assert pub.noisy_degrees.shape == (small_graph.num_upper,)
        assert pub.layer is Layer.UPPER

    def test_average_degree_unbiased(self, small_graph):
        averages = [
            publish_noisy_degrees(small_graph, Layer.UPPER, 1.0, rng=s).average_degree
            for s in range(300)
        ]
        truth = small_graph.average_degree(Layer.UPPER)
        se = np.std(averages, ddof=1) / np.sqrt(len(averages))
        assert abs(np.mean(averages) - truth) < 5 * se

    def test_total_edges_estimate(self, small_graph):
        pub = publish_noisy_degrees(small_graph, Layer.UPPER, 5.0, rng=2)
        assert pub.total_edges_estimate == pytest.approx(
            small_graph.num_edges, rel=0.2
        )

    def test_clipped_non_negative(self, small_graph):
        pub = publish_noisy_degrees(small_graph, Layer.UPPER, 0.1, rng=3)
        assert (pub.clipped() >= 0).all()

    def test_histogram_counts_sum(self, small_graph):
        pub = publish_noisy_degrees(small_graph, Layer.UPPER, 2.0, rng=4)
        edges = [0, 5, 10, 20, 1000]
        counts = noisy_degree_histogram(pub, edges)
        assert counts.sum() == small_graph.num_upper

    def test_histogram_bad_edges(self, small_graph):
        pub = publish_noisy_degrees(small_graph, Layer.UPPER, 2.0, rng=5)
        with pytest.raises(PrivacyError):
            noisy_degree_histogram(pub, [5, 5])
        with pytest.raises(PrivacyError):
            noisy_degree_histogram(pub, [3])


class TestIntervals:
    @pytest.fixture(scope="class")
    def graph(self):
        return random_bipartite(70, 90, 800, rng=41)

    @pytest.mark.parametrize(
        "name", ["oner", "multir-ss", "multir-ds-basic", "multir-ds-star", "central-dp"]
    )
    def test_coverage_at_95(self, graph, name):
        """Chebyshev intervals must over-cover their nominal level."""
        estimator = get_estimator(name)
        true = graph.count_common_neighbors(Layer.UPPER, 0, 1)
        rngs = spawn_rngs(13, 400)
        hits = 0
        for r in rngs:
            result = estimator.estimate(
                graph, Layer.UPPER, 0, 1, 2.0, rng=r, mode=ExecutionMode.SKETCH
            )
            lo, hi = interval_for_result(result, graph, confidence=0.95)
            hits += lo <= true <= hi
        assert hits / 400 >= 0.95

    def test_variance_positive(self, graph):
        result = get_estimator("multir-ds").estimate(
            graph, Layer.UPPER, 0, 1, 2.0, rng=1
        )
        assert predicted_variance(result, graph) > 0

    def test_ss_source_w_uses_other_degree(self, graph):
        res_u = get_estimator("multir-ss", source="u").estimate(
            graph, Layer.UPPER, 0, 1, 2.0, rng=1
        )
        res_w = get_estimator("multir-ss", source="w").estimate(
            graph, Layer.UPPER, 0, 1, 2.0, rng=1
        )
        var_u = predicted_variance(res_u, graph)
        var_w = predicted_variance(res_w, graph)
        du = graph.degree(Layer.UPPER, 0)
        dw = graph.degree(Layer.UPPER, 1)
        if du != dw:
            assert var_u != var_w

    def test_unsupported_algorithms_raise(self, graph):
        naive = get_estimator("naive").estimate(graph, Layer.UPPER, 0, 1, 2.0, rng=1)
        with pytest.raises(ReproError):
            predicted_variance(naive, graph)
        exact = get_estimator("exact").estimate(graph, Layer.UPPER, 0, 1)
        with pytest.raises(ReproError):
            predicted_variance(exact, graph)

    def test_interval_widens_with_confidence(self, graph):
        result = get_estimator("oner").estimate(graph, Layer.UPPER, 0, 1, 2.0, rng=2)
        lo90, hi90 = interval_for_result(result, graph, confidence=0.90)
        lo99, hi99 = interval_for_result(result, graph, confidence=0.99)
        assert hi99 - lo99 > hi90 - lo90

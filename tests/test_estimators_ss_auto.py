"""Tests for the MultiR-SS source-auto extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PrivacyError
from repro.estimators.multir_ss import MultiRoundSingleSource
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.privacy.rng import spawn_rngs


@pytest.fixture(scope="module")
def graph():
    return random_bipartite(60, 300, 1800, rng=51)


@pytest.fixture(scope="module")
def imbalanced_pair(graph):
    degrees = graph.degrees(Layer.UPPER)
    heavy = int(np.argmax(degrees))
    light = int(np.argmin(degrees + (np.arange(degrees.size) == heavy) * 10**6))
    return heavy, light


class TestAutoSource:
    def test_round_structure(self, graph, imbalanced_pair):
        heavy, light = imbalanced_pair
        est = MultiRoundSingleSource(source="auto")
        result = est.estimate(graph, Layer.UPPER, heavy, light, 2.0, rng=1)
        assert result.rounds == 3  # degrees + rr + estimate
        assert result.details["eps0"] == pytest.approx(0.1)
        total = (
            result.details["eps0"]
            + result.details["eps1"]
            + result.details["eps2"]
        )
        assert total == pytest.approx(2.0)

    def test_usually_picks_low_degree_vertex(self, graph, imbalanced_pair):
        """With strongly imbalanced degrees the noisy comparison almost
        always resolves correctly."""
        heavy, light = imbalanced_pair
        est = MultiRoundSingleSource(source="auto")
        picks = [
            est.estimate(graph, Layer.UPPER, heavy, light, 2.0, rng=s).details[
                "selected_source"
            ]
            for s in range(30)
        ]
        assert picks.count("w") >= 27  # w == the light vertex here

    def test_auto_beats_fixed_heavy_source(self, graph, imbalanced_pair):
        heavy, light = imbalanced_pair
        true = graph.count_common_neighbors(Layer.UPPER, heavy, light)
        rngs = spawn_rngs(3, 3000)
        auto = np.array(
            [
                MultiRoundSingleSource(source="auto")
                .estimate(graph, Layer.UPPER, heavy, light, 2.0, rng=rngs[t])
                .value
                for t in range(1500)
            ]
        )
        fixed = np.array(
            [
                MultiRoundSingleSource(source="u")
                .estimate(graph, Layer.UPPER, heavy, light, 2.0, rng=rngs[1500 + t])
                .value
                for t in range(1500)
            ]
        )
        auto_l2 = ((auto - true) ** 2).mean()
        fixed_l2 = ((fixed - true) ** 2).mean()
        assert auto_l2 < fixed_l2

    def test_auto_with_optimizer_shares_degree_round(self, graph, imbalanced_pair):
        heavy, light = imbalanced_pair
        est = MultiRoundSingleSource(source="auto", optimize_budget=True)
        result = est.estimate(graph, Layer.UPPER, heavy, light, 2.0, rng=4)
        # One degree round only: eps0 + eps1 + eps2 == eps exactly.
        total = (
            result.details["eps0"]
            + result.details["eps1"]
            + result.details["eps2"]
        )
        assert total == pytest.approx(2.0)
        assert result.rounds == 3
        assert "predicted_loss" in result.details
        assert "selected_source" in result.details

    def test_budget_never_exceeded(self, graph, imbalanced_pair):
        heavy, light = imbalanced_pair
        est = MultiRoundSingleSource(source="auto")
        for seed in range(8):
            result = est.estimate(graph, Layer.UPPER, heavy, light, 1.5, rng=seed)
            assert result.transcript.max_epsilon_spent <= 1.5 + 1e-9

    def test_invalid_source_still_rejected(self):
        with pytest.raises(PrivacyError):
            MultiRoundSingleSource(source="q")

    def test_unbiased(self, graph, imbalanced_pair):
        heavy, light = imbalanced_pair
        true = graph.count_common_neighbors(Layer.UPPER, heavy, light)
        rngs = spawn_rngs(5, 2500)
        values = np.array(
            [
                MultiRoundSingleSource(source="auto")
                .estimate(graph, Layer.UPPER, heavy, light, 2.0, rng=r)
                .value
                for r in rngs
            ]
        )
        se = values.std(ddof=1) / np.sqrt(values.size)
        assert abs(values.mean() - true) < 5 * se

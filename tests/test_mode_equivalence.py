"""Materialize vs sketch execution: distributional equivalence.

The sketch mode draws the protocol's sufficient statistics from their
claimed exact distributions; if that claim is wrong, error experiments run
at scale would be silently biased. These tests compare the first two
moments of every estimator across modes on a small graph.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.estimators.registry import get_estimator
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.generators import random_bipartite
from repro.privacy.rng import spawn_rngs
from repro.protocol.session import ExecutionMode

TRIALS = 4000
EPSILON = 1.5

ALGORITHMS = (
    "naive",
    "oner",
    "multir-ss",
    "multir-ds-basic",
    "multir-ds",
    "multir-ds-star",
)


@pytest.fixture(scope="module")
def graph() -> BipartiteGraph:
    return random_bipartite(50, 70, 600, rng=99)


def _samples(graph, name, mode, seed):
    estimator = get_estimator(name)
    rngs = spawn_rngs(seed, TRIALS)
    return np.array(
        [
            estimator.estimate(
                graph, Layer.UPPER, 3, 17, EPSILON, rng=rngs[t], mode=mode
            ).value
            for t in range(TRIALS)
        ]
    )


@pytest.mark.parametrize("name", ALGORITHMS)
class TestModeEquivalence:
    def test_means_agree(self, graph, name):
        mat = _samples(graph, name, ExecutionMode.MATERIALIZE, seed=1)
        sk = _samples(graph, name, ExecutionMode.SKETCH, seed=2)
        pooled_sd = math.sqrt(mat.var() / TRIALS + sk.var() / TRIALS)
        assert abs(mat.mean() - sk.mean()) < 5.0 * max(pooled_sd, 1e-9)

    def test_variances_agree(self, graph, name):
        mat = _samples(graph, name, ExecutionMode.MATERIALIZE, seed=3)
        sk = _samples(graph, name, ExecutionMode.SKETCH, seed=4)
        ratio = mat.var(ddof=1) / max(sk.var(ddof=1), 1e-12)
        assert 0.75 < ratio < 1.33

    def test_communication_sizes_agree(self, graph, name):
        estimator = get_estimator(name)
        rngs = spawn_rngs(5, 600)
        mat = np.array(
            [
                estimator.estimate(
                    graph, Layer.UPPER, 3, 17, EPSILON, rng=rngs[t],
                    mode=ExecutionMode.MATERIALIZE,
                ).communication_bytes
                for t in range(300)
            ]
        )
        sk = np.array(
            [
                estimator.estimate(
                    graph, Layer.UPPER, 3, 17, EPSILON, rng=rngs[300 + t],
                    mode=ExecutionMode.SKETCH,
                ).communication_bytes
                for t in range(300)
            ]
        )
        assert sk.mean() == pytest.approx(mat.mean(), rel=0.10)

"""Chaos suite: every injected failure schedule is invisible in the bits.

The resilience contract under test (``docs/resilience-guide.md``): a
shard task is a pure function of ``(graph, range, epsilon, entropy,
epoch)``, so killed workers, stalled workers, corrupted payloads — any
:class:`~repro.engine.faults.FaultPlan` at all — must yield output
byte-identical to the fault-free keyed pass, charge the privacy ledger
exactly once, and leave no ``SharedMemory`` segment behind.
"""

from __future__ import annotations

import glob
import os
import time

import numpy as np
import pytest

from repro.engine.bulkrr import keyed_bulk_randomized_response
from repro.engine.core import BatchQueryEngine
from repro.engine.faults import FAULT_PLAN_ENV, FaultAction, FaultPlan
from repro.engine.planner import plan_shards
from repro.engine.sharded import ShardedRunner, fork_available
from repro.errors import PrivacyError, ProtocolError
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.graph.sampling import sample_query_pairs
from repro.privacy.accountant import PrivacyLedger
from repro.protocol.session import ExecutionMode

EPS = 2.0
ENTROPY = 20240611
SHARDS = 3

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fault injection needs forked worker pools"
)


@pytest.fixture(scope="module")
def graph():
    return random_bipartite(90, 60, 700, rng=23)


@pytest.fixture(scope="module")
def plan(graph):
    return plan_shards(
        graph, Layer.UPPER, np.arange(90, dtype=np.int64), EPS, shards=SHARDS
    )


@pytest.fixture(scope="module")
def reference(graph):
    return keyed_bulk_randomized_response(
        graph, Layer.UPPER, np.arange(90, dtype=np.int64), EPS,
        entropy=ENTROPY, epoch=0,
    )


@pytest.fixture(autouse=True)
def no_leftover_plan():
    """Every test starts and ends with no installed fault plan."""
    FaultPlan.uninstall()
    yield
    FaultPlan.uninstall()


def shm_residue() -> list[str]:
    """Runner-created segments currently visible in /dev/shm."""
    prefix = f"/dev/shm/repro_{os.getpid():x}_"
    return glob.glob(prefix + "*")


# ----------------------------------------------------------------------
# FaultPlan mechanics (no processes involved)
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ProtocolError, match="unknown fault kind"):
            FaultAction(kind="segfault")

    def test_rejects_negative_delay(self):
        with pytest.raises(ProtocolError, match="delay_s"):
            FaultAction(kind="delay", delay_s=-1.0)

    def test_matches_shard_and_attempt(self):
        action = FaultAction(kind="kill", shard=2, attempts=(0, 1))
        assert action.matches(2, 0) and action.matches(2, 1)
        assert not action.matches(2, 2)
        assert not action.matches(1, 0)

    def test_none_wildcards_match_everything(self):
        action = FaultAction(kind="kill", shard=None, attempts=None)
        assert action.matches(0, 0) and action.matches(7, 5)

    def test_action_for_returns_first_match(self):
        plan = FaultPlan(
            (
                FaultAction(kind="delay", shard=1, delay_s=0.5),
                FaultAction(kind="kill", shard=None, attempts=None),
            )
        )
        assert plan.action_for(1, 0).kind == "delay"
        assert plan.action_for(0, 3).kind == "kill"

    def test_mutation_sentinel_is_disjoint_from_shard_tasks(self):
        """A plan keyed on the MUTATE sentinel fires only for mutation
        pushes (the worker looks it up under shard -2, sequence as the
        attempt) and never intercepts ordinary shard dispatches."""
        from repro.engine.worker import MUTATE_FAULT_SHARD

        plan = FaultPlan.kill_shards([MUTATE_FAULT_SHARD])
        assert plan.action_for(MUTATE_FAULT_SHARD, 0).kind == "kill"
        assert plan.action_for(MUTATE_FAULT_SHARD, 1) is None
        for shard in range(4):  # real shard tasks are untouched
            assert plan.action_for(shard, 0) is None

    def test_json_round_trip(self):
        plan = FaultPlan(
            (
                FaultAction(kind="poison", shard=0),
                FaultAction(kind="delay", shard=None, attempts=None, delay_s=1.5),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_env_transport(self):
        plan = FaultPlan.kill_shards([1, 2], attempts=(0,))
        assert FaultPlan.from_env() is None
        with plan.active():
            assert os.environ[FAULT_PLAN_ENV]
            assert FaultPlan.from_env() == plan
        assert FaultPlan.from_env() is None

    def test_uninstall_is_idempotent(self):
        FaultPlan.uninstall()
        FaultPlan.uninstall()
        assert FaultPlan.from_env() is None


# ----------------------------------------------------------------------
# Runner parameter validation
# ----------------------------------------------------------------------
class TestRunnerValidation:
    def test_rejects_bad_timeout(self, graph):
        with pytest.raises(ProtocolError, match="timeout_s"):
            ShardedRunner(graph, Layer.UPPER, timeout_s=0)

    def test_rejects_negative_retries(self, graph):
        with pytest.raises(ProtocolError, match="max_retries"):
            ShardedRunner(graph, Layer.UPPER, max_retries=-1)

    def test_rejects_negative_backoff(self, graph):
        with pytest.raises(ProtocolError, match="backoff"):
            ShardedRunner(graph, Layer.UPPER, backoff_base_s=-0.1)


# ----------------------------------------------------------------------
# The chaos schedules: byte-identity survives every failure plan
# ----------------------------------------------------------------------
SCHEDULES = [
    pytest.param(FaultPlan.kill_shards([0]), id="kill-first"),
    pytest.param(FaultPlan.kill_shards([SHARDS - 1]), id="kill-last"),
    pytest.param(
        FaultPlan.kill_shards(list(range(SHARDS - 1))), id="kill-all-but-one"
    ),
    pytest.param(
        FaultPlan.kill_shards([1], after_write=True), id="kill-after-write"
    ),
    pytest.param(FaultPlan.delay_shards([0], 2.5), id="delay-past-deadline"),
    pytest.param(FaultPlan.poison_shards([2]), id="poison-payload"),
    pytest.param(
        FaultPlan.poison_shards(None, attempts=(0, 1)), id="poison-twice-all"
    ),
    pytest.param(
        FaultPlan.kill_shards(None, attempts=None), id="kill-all-every-attempt"
    ),
]


@needs_fork
@pytest.mark.parametrize("fault_plan", SCHEDULES)
def test_byte_identity_survives_schedule(graph, plan, reference, fault_plan):
    ref_indptr, ref_columns = reference
    with ShardedRunner(
        graph, Layer.UPPER,
        max_workers=2, timeout_s=1.0, max_retries=2, backoff_base_s=0.01,
    ) as runner:
        with fault_plan.active():
            drawn = runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
        assert np.array_equal(drawn.indptr, ref_indptr)
        assert np.array_equal(drawn.columns, ref_columns)
        injected = any(
            drawn.faults[key]
            for key in ("retries", "timeouts", "worker_deaths", "payload_errors")
        ) or drawn.faults["degraded_ranges"]
        assert injected, "the schedule should have produced observable faults"
    assert not runner._segments, "segment registry must be empty after close"
    assert not shm_residue(), "no /dev/shm segment may outlive the runner"


@needs_fork
def test_kill_everything_degrades_to_inline(graph, plan, reference):
    """Retry exhaustion falls back to the parent and still finishes."""
    ref_indptr, ref_columns = reference
    with ShardedRunner(
        graph, Layer.UPPER,
        max_workers=2, timeout_s=2.0, max_retries=1, backoff_base_s=0.0,
    ) as runner:
        with FaultPlan.kill_shards(None, attempts=None).active():
            drawn = runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
    assert np.array_equal(drawn.indptr, ref_indptr)
    assert np.array_equal(drawn.columns, ref_columns)
    assert sorted(drawn.faults["degraded_ranges"]) == plan.ranges()
    assert all(shard["degraded"] for shard in drawn.shards)


@needs_fork
def test_fault_counters_classify_the_failure(graph, plan):
    with ShardedRunner(
        graph, Layer.UPPER,
        max_workers=2, timeout_s=1.0, max_retries=2, backoff_base_s=0.01,
    ) as runner:
        with FaultPlan.poison_shards([0]).active():
            drawn = runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
        assert drawn.faults["payload_errors"] == 1
        assert drawn.faults["worker_deaths"] == 0
        assert drawn.faults["retries"] >= 1
        assert len(drawn.faults["backoff_s"]) >= 1
        assert runner.fault_totals["payload_errors"] == 1


@needs_fork
def test_delay_trips_deadline_and_zombie_segment_is_reclaimed(graph, plan):
    """A stalled worker times out; its late segment never leaks."""
    with ShardedRunner(
        graph, Layer.UPPER,
        max_workers=2, timeout_s=0.3, max_retries=1, backoff_base_s=0.0,
    ) as runner:
        with FaultPlan.delay_shards([0], 1.5).active():
            drawn = runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
        assert drawn.faults["timeouts"] >= 1
        # close() joins the zombie before the final sweep.
    assert not runner._segments
    assert not shm_residue()


@needs_fork
def test_kill_after_write_reclaims_orphaned_segment(graph, plan):
    """Regression: a worker dying between shm.create and the parent's
    fetch used to leak the segment; the parent-owned name registry now
    sweeps it on the failure path."""
    with ShardedRunner(
        graph, Layer.UPPER,
        max_workers=2, timeout_s=2.0, max_retries=2, backoff_base_s=0.01,
    ) as runner:
        with FaultPlan.kill_shards([0], after_write=True).active():
            drawn = runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
        assert drawn.faults["reclaimed_segments"] >= 1
        assert not shm_residue(), "orphan must be swept during the draw"
    assert not runner._segments


@needs_fork
def test_queued_tasks_do_not_spuriously_time_out(graph, reference):
    """The deadline bounds *execution*, not queue position: with more
    ranges than workers, a healthy task queued behind a full first wave
    must not be declared timed out (the round waits one deadline per
    execution wave)."""
    ref_indptr, ref_columns = reference
    plan4 = plan_shards(
        graph, Layer.UPPER, np.arange(90, dtype=np.int64), EPS, shards=4
    )
    with ShardedRunner(
        graph, Layer.UPPER,
        max_workers=2, timeout_s=0.45, max_retries=2, backoff_base_s=0.0,
    ) as runner:
        # Every task runs ~0.25s, so the second wave finishes ~0.5s
        # after dispatch — past one deadline, comfortably inside the
        # two-wave round budget of 0.9s.
        with FaultPlan.delay_shards(None, 0.25).active():
            drawn = runner.draw(plan4, EPS, entropy=ENTROPY, epoch=0)
    assert np.array_equal(drawn.indptr, ref_indptr)
    assert np.array_equal(drawn.columns, ref_columns)
    assert drawn.faults["timeouts"] == 0
    assert drawn.faults["retries"] == 0
    assert not drawn.faults["degraded_ranges"]


@needs_fork
def test_close_is_bounded_with_a_wedged_worker(graph, plan, monkeypatch):
    """Regression: close() used to join retired pools with ``wait=True``,
    so a permanently stuck worker hung shutdown forever. The bounded
    join terminates stragglers instead."""
    import repro.engine.transport as transport_mod

    monkeypatch.setattr(transport_mod, "_JOIN_GRACE_S", 0.3)
    with ShardedRunner(
        graph, Layer.UPPER,
        max_workers=2, timeout_s=0.2, max_retries=0, backoff_base_s=0.0,
    ) as runner:
        with FaultPlan.delay_shards([0], 60.0).active():
            drawn = runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
        assert drawn.faults["timeouts"] >= 1
        start = time.monotonic()
    elapsed = time.monotonic() - start  # `with` exit ran close()
    assert elapsed < 5.0, "close() must not inherit a wedged worker's hang"
    assert not runner._segments
    assert not shm_residue()


@needs_fork
def test_recurring_faults_do_not_grow_the_segment_registry(graph, plan):
    """Regression: names registered for dispatches whose worker died
    before ``shm.create`` stayed in the registry until close(). Retired
    pools are now reaped once their workers exit, dropping names nobody
    can ever create, so a long-running server under recurring faults
    keeps a bounded registry."""
    with ShardedRunner(
        graph, Layer.UPPER,
        max_workers=2, timeout_s=2.0, max_retries=2, backoff_base_s=0.0,
    ) as runner:
        for _ in range(3):
            with FaultPlan.kill_shards([0]).active():
                runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
        # Give each retired pool's surviving workers a moment to exit,
        # then reap: nothing may accumulate across faulted draws.
        deadline = time.monotonic() + 5.0
        while runner._segments and time.monotonic() < deadline:
            runner._reap_retired()
            time.sleep(0.05)
        assert not runner._segments
        assert not runner._retired
    assert not shm_residue()


@needs_fork
def test_genuine_errors_are_not_retried(graph, plan):
    """A deterministic bug (bad epsilon) propagates instead of retrying."""
    with ShardedRunner(
        graph, Layer.UPPER, max_workers=2, timeout_s=5.0, max_retries=3
    ) as runner:
        with pytest.raises(PrivacyError):
            runner.draw(plan, -1.0, entropy=ENTROPY, epoch=0)
        assert runner.fault_totals["retries"] == 0
    assert not runner._segments
    assert not shm_residue()


def test_inline_runner_ignores_fault_plans(graph, plan, reference):
    """A 1-worker runner never forks, so no fault can touch it."""
    ref_indptr, ref_columns = reference
    with ShardedRunner(graph, Layer.UPPER, max_workers=1) as runner:
        with FaultPlan.kill_shards(None, attempts=None).active():
            drawn = runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
    assert np.array_equal(drawn.indptr, ref_indptr)
    assert np.array_equal(drawn.columns, ref_columns)
    assert drawn.faults["retries"] == 0
    assert not drawn.faults["degraded_ranges"]


@needs_fork
def test_backoff_schedule_is_keyed_not_wallclock(graph, plan):
    """The same failure schedule replays the same backoff waits."""
    waits = []
    for _ in range(2):
        with ShardedRunner(
            graph, Layer.UPPER,
            max_workers=2, timeout_s=2.0, max_retries=2, backoff_base_s=0.02,
        ) as runner:
            with FaultPlan.poison_shards([0], attempts=(0, 1)).active():
                drawn = runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
            waits.append(tuple(drawn.faults["backoff_s"]))
    assert waits[0] == waits[1]
    assert len(waits[0]) == 2


# ----------------------------------------------------------------------
# Engine-level accounting: faults charge nothing extra
# ----------------------------------------------------------------------
@needs_fork
def test_single_charge_accounting_under_faults(graph):
    """Fault vs no-fault runs: identical estimates, identical spend."""
    pairs = sample_query_pairs(graph, Layer.UPPER, 12, rng=5)

    def run(fault_plan):
        ledger = PrivacyLedger()
        with BatchQueryEngine(
            mode=ExecutionMode.MATERIALIZE,
            shards=SHARDS, shard_timeout_s=2.0, shard_retries=2,
        ) as engine:
            engine._shard_runner(graph, Layer.UPPER).backoff_base_s = 0.01
            if fault_plan is not None:
                with fault_plan.active():
                    result = engine.estimate_pairs(
                        graph, Layer.UPPER, pairs, EPS, rng=99, ledger=ledger
                    )
            else:
                result = engine.estimate_pairs(
                    graph, Layer.UPPER, pairs, EPS, rng=99, ledger=ledger
                )
        return result, ledger

    clean, clean_ledger = run(None)
    chaos, chaos_ledger = run(FaultPlan.kill_shards([0]))
    np.testing.assert_array_equal(clean.values, chaos.values)
    np.testing.assert_array_equal(
        clean.noisy_intersections, chaos.noisy_intersections
    )
    assert clean_ledger.max_spent() == chaos_ledger.max_spent()
    assert clean.upload_bytes == chaos.upload_bytes
    faults = chaos.details["shards"]["faults"]
    assert faults["worker_deaths"] >= 1
    assert clean.details["shards"]["faults"]["retries"] == 0
    assert not shm_residue()

"""Tests for GraphBuilder and the I/O round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.builder import GraphBuilder
from repro.graph.io import load_npz, read_edge_list, save_npz, write_edge_list


class TestGraphBuilder:
    def test_interning_assigns_dense_ids(self):
        b = GraphBuilder()
        assert b.add_upper("alice") == 0
        assert b.add_upper("bob") == 1
        assert b.add_upper("alice") == 0
        assert b.add_lower("item-1") == 0

    def test_add_edge_chains(self):
        b = GraphBuilder().add_edge("a", "x").add_edge("b", "y")
        assert b.num_upper == 2
        assert b.num_lower == 2
        assert b.num_edges == 2

    def test_add_edges_bulk(self):
        b = GraphBuilder()
        b.add_edges([("a", "x"), ("a", "y"), ("b", "x")])
        g = b.build()
        assert g.num_edges == 3
        assert g.count_common_neighbors(Layer.UPPER, 0, 1) == 1

    def test_duplicates_collapse_on_build(self):
        b = GraphBuilder().add_edge("a", "x").add_edge("a", "x")
        assert b.num_edges == 2  # raw insertions
        assert b.build().num_edges == 1

    def test_id_lookup(self):
        b = GraphBuilder().add_edge("a", "x")
        assert b.upper_id("a") == 0
        assert b.lower_id("x") == 0

    def test_unknown_names_raise(self):
        b = GraphBuilder()
        with pytest.raises(GraphError):
            b.upper_id("ghost")
        with pytest.raises(GraphError):
            b.lower_id("ghost")

    def test_names_in_id_order(self):
        b = GraphBuilder().add_edge("b", "y").add_edge("a", "x")
        assert b.upper_names() == ["b", "a"]
        assert b.lower_names() == ["y", "x"]

    def test_empty_build(self):
        g = GraphBuilder().build()
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_integer_names_supported(self):
        b = GraphBuilder().add_edge(10, 20).add_edge(11, 20)
        g = b.build()
        assert g.count_common_neighbors(Layer.UPPER, 0, 1) == 1


class TestEdgeListIO:
    def test_round_trip(self, tiny_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        write_edge_list(tiny_graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_edges == tiny_graph.num_edges
        # Names are interned in file order, so common-neighbor structure
        # is preserved even if ids permute.
        assert sorted(loaded.degrees(Layer.UPPER)) == sorted(
            tiny_graph.degrees(Layer.UPPER)
        )

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "konect.tsv"
        path.write_text("% bip\n# another comment\n\n1 2\n1 3\n2 2\n")
        g = read_edge_list(path)
        assert g.num_upper == 2
        assert g.num_lower == 2
        assert g.num_edges == 3

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "weighted.tsv"
        path.write_text("1 2 5.0 1234567\n2 3 1.0 1234568\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_short_line_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_written_file_has_header(self, tiny_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        write_edge_list(tiny_graph, path)
        first = path.read_text().splitlines()[0]
        assert first.startswith("%")


class TestNpzIO:
    def test_round_trip_exact(self, small_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_npz(small_graph, path)
        assert load_npz(path) == small_graph

    def test_round_trip_preserves_isolated_vertices(self, tmp_path):
        g = BipartiteGraph(5, 7, [(0, 0)])
        path = tmp_path / "iso.npz"
        save_npz(g, path)
        loaded = load_npz(path)
        assert loaded.num_upper == 5
        assert loaded.num_lower == 7

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphError):
            load_npz(tmp_path / "nope.npz")

    def test_load_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "corrupt.npz"
        np.savez(path, unrelated=np.arange(3))
        with pytest.raises(GraphError):
            load_npz(path)

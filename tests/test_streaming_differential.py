"""Differential harness for streaming mutations with incremental epochs.

The contract under test: after any sequence of ``mutate()`` +
``rotate()`` rounds, the incremental cache's state is **bit-identical**
to a from-scratch rebuild — a direct keyed draw over the *mutated* graph
at the cache's own ``(entropy, draw_epoch, versions)``. Clean vertices
must keep their resident draws byte for byte across rotations, dirty
vertices must come back as fresh streams, and the identity must hold
whatever the shard tiling (1/2/4 ranges or real forked workers): version
words ride inside each vertex's private counter, so range boundaries
cannot see them.

Mutation scripts are hypothesis-generated; the ``ci`` profile
(derandomized, no deadline) keeps runs reproducible under pytest-timeout.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.bulkrr import (
    keyed_bulk_randomized_response,
    keyed_laplace_noise,
    keyed_pair_generator,
    shard_bulk_randomized_response,
)
from repro.engine.planner import plan_shards
from repro.engine.sharded import ShardedRunner
from repro.engine.sketch import sketch_pair_counts
from repro.engine.sketches import SketchConfig, sketch_family
from repro.graph import Layer, random_bipartite
from repro.privacy.mechanisms import LaplaceMechanism
from repro.privacy.sensitivity import degree_sensitivity
from repro.protocol.session import ExecutionMode
from repro.serving import NoisyViewCache

EPSILON = 2.0
N_UPPER, N_LOWER, N_EDGES = 30, 24, 180


# ----------------------------------------------------------------------
# Mutation-script strategy: a few epochs of coordinate-level edge ops.
# Coordinates are drawn as raw (u, l) cells; whether an op is a net
# insert, a net delete, or a no-op depends on the evolving membership —
# exactly the ambiguity the delta log must resolve.
# ----------------------------------------------------------------------
ops = st.tuples(
    st.booleans(),  # True = insert, False = delete
    st.integers(0, N_UPPER - 1),
    st.integers(0, N_LOWER - 1),
)
scripts = st.lists(  # one inner list of ops per mutate+rotate round
    st.lists(ops, min_size=1, max_size=10), min_size=1, max_size=3
)


def _graph(seed: int = 11):
    return random_bipartite(N_UPPER, N_LOWER, N_EDGES, rng=seed)


def _run_script(
    cache: NoisyViewCache, script, refill=None
) -> tuple[list[set[int]], bool]:
    """Apply each round as one mutate()+rotate().

    ``refill(cache)`` re-draws dropped entries between rounds (like a
    serving epoch touching the whole layer); it is *not* called after
    the final rotation so retention can be asserted on the raw state.
    Returns the per-round dirty sets and whether every rotation took the
    incremental path (a round whose ops cancel to nothing rotates fully).
    """
    dirty_sets = []
    all_incremental = True
    for i, round_ops in enumerate(script):
        inserts = [(u, l) for ins, u, l in round_ops if ins]
        deletes = [(u, l) for ins, u, l in round_ops if not ins]
        cache.mutate(inserts=inserts, deletes=deletes)
        dirty_sets.append({int(v) for v in cache.pending_dirty()})
        cache.rotate()
        all_incremental &= bool(cache.last_rotation["incremental"])
        if refill is not None and i + 1 < len(script):
            refill(cache)
    return dirty_sets, all_incremental


def _materialized_rows(cache, vertices):
    return {int(v): cache.view(v).copy() for v in vertices}


class TestMaterializeDifferential:
    @given(scripts)
    @settings(max_examples=20, deadline=None)
    def test_incremental_equals_from_scratch(self, script):
        graph = _graph()
        verts = np.arange(N_UPPER, dtype=np.int64)
        cache = NoisyViewCache(
            graph, Layer.UPPER, EPSILON, max_entries=10**6,
            rng=np.random.default_rng(21),
        )
        def refill(c):
            c.materialize_fresh(
                np.array(
                    [v for v in range(N_UPPER) if not c.has_view(v)],
                    dtype=np.int64,
                )
            )

        cache.materialize_fresh(verts)
        before = _materialized_rows(cache, verts)
        dirty_sets, all_incremental = _run_script(cache, script, refill)

        if cache.last_rotation["incremental"]:
            # Clean vertices of the final round kept their resident rows.
            for v in range(N_UPPER):
                if v not in dirty_sets[-1]:
                    assert cache.has_view(v)

        # Redraw whatever dropped, then compare the complete state to a
        # from-scratch keyed pass over the mutated graph.
        missing = np.array(
            [v for v in range(N_UPPER) if not cache.has_view(v)],
            dtype=np.int64,
        )
        cache.materialize_fresh(missing)
        ref_ip, ref_cols = keyed_bulk_randomized_response(
            cache.graph, Layer.UPPER, verts, EPSILON,
            entropy=cache._entropy, epoch=cache.draw_epoch,
            versions=cache._versions[verts],
        )
        for i, v in enumerate(verts):
            np.testing.assert_array_equal(
                cache.view(v), ref_cols[ref_ip[i] : ref_ip[i + 1]]
            )
        # When no round fell back to a full rotation, a never-dirtied
        # vertex still replays its original epoch-0 draw.
        if all_incremental:
            ever_dirty = set().union(*dirty_sets)
            for v in range(N_UPPER):
                if v not in ever_dirty:
                    np.testing.assert_array_equal(cache.view(v), before[v])

    @given(scripts)
    @settings(max_examples=12, deadline=None)
    @pytest.mark.parametrize("num_ranges", [1, 2, 4])
    def test_shard_tilings_are_byte_identical(self, num_ranges, script):
        """Version words must survive range partitioning byte-identically."""
        graph = _graph()
        verts = np.arange(N_UPPER, dtype=np.int64)
        cache = NoisyViewCache(
            graph, Layer.UPPER, EPSILON, max_entries=10**6,
            rng=np.random.default_rng(22),
        )
        _run_script(cache, script)[0]
        ref_ip, ref_cols = keyed_bulk_randomized_response(
            cache.graph, Layer.UPPER, verts, EPSILON,
            entropy=cache._entropy, epoch=cache.draw_epoch,
            versions=cache._versions[verts],
        )
        bounds = np.linspace(0, verts.size, num_ranges + 1).astype(int)
        ranges = [
            (int(bounds[i]), int(bounds[i + 1])) for i in range(num_ranges)
        ]
        tiled_ip, tiled_cols = shard_bulk_randomized_response(
            cache.graph, Layer.UPPER, verts, EPSILON,
            entropy=cache._entropy, epoch=cache.draw_epoch,
            ranges=ranges, versions=cache._versions[verts],
        )
        np.testing.assert_array_equal(tiled_ip, ref_ip)
        np.testing.assert_array_equal(tiled_cols, ref_cols)


class TestShardedRunnerDifferential:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_forked_workers_match_unsharded_after_mutations(self, workers):
        """Real process-pool shards on the mutated snapshot: the runner is
        rebound at rotation and its fragments carry the version words."""
        graph = _graph(31)
        verts = np.arange(N_UPPER, dtype=np.int64)
        runner = ShardedRunner(graph, Layer.UPPER, max_workers=workers)
        cache = NoisyViewCache(
            graph, Layer.UPPER, EPSILON,
            rng=np.random.default_rng(23), shard_runner=runner,
        )
        try:
            cache.materialize_fresh(verts)
            edge = tuple(int(x) for x in graph.edges[0])
            cache.mutate(inserts=[(0, 1), (5, 3)], deletes=[edge])
            cache.rotate()
            assert cache.last_rotation["incremental"]
            missing = np.array(
                [v for v in range(N_UPPER) if not cache.has_view(v)],
                dtype=np.int64,
            )
            cache.materialize_fresh(missing)  # sharded draw on new graph
            ref_ip, ref_cols = keyed_bulk_randomized_response(
                cache.graph, Layer.UPPER, verts, EPSILON,
                entropy=cache._entropy, epoch=cache.draw_epoch,
                versions=cache._versions[verts],
            )
            for i, v in enumerate(verts):
                np.testing.assert_array_equal(
                    cache.view(v), ref_cols[ref_ip[i] : ref_ip[i + 1]]
                )
            # And an explicit runner draw over every vertex re-tiles the
            # same bytes whatever the plan boundaries.
            plan = plan_shards(
                cache.graph, Layer.UPPER, verts, EPSILON, shards=workers
            )
            drawn = runner.draw(
                plan, EPSILON, entropy=cache._entropy,
                epoch=cache.draw_epoch, versions=cache._versions[verts],
            )
            np.testing.assert_array_equal(drawn.indptr, ref_ip)
            np.testing.assert_array_equal(drawn.columns, ref_cols)
        finally:
            runner.close()


class TestSketchViewDifferential:
    @given(scripts)
    @settings(max_examples=12, deadline=None)
    def test_incremental_views_equal_from_scratch(self, script):
        graph = _graph(41)
        verts = np.arange(N_UPPER, dtype=np.int64)
        config = SketchConfig("bloom", 128)
        cache = NoisyViewCache(
            graph, Layer.UPPER, EPSILON, mode=ExecutionMode.SKETCH_VIEW,
            sketch=config, max_entries=10**6,
            rng=np.random.default_rng(24),
        )
        def refill(c):
            c.sketch_view_fresh(
                np.array(
                    [v for v in range(N_UPPER) if not c.has_sketch_view(v)],
                    dtype=np.int64,
                )
            )

        cache.sketch_view_fresh(verts)
        before = {int(v): cache.sketch_view(v).copy() for v in verts}
        dirty_sets, all_incremental = _run_script(cache, script, refill)

        missing = np.array(
            [v for v in range(N_UPPER) if not cache.has_sketch_view(v)],
            dtype=np.int64,
        )
        cache.sketch_view_fresh(missing)
        family = sketch_family(config)
        ref = family.encode_release(
            cache.graph, Layer.UPPER, verts, EPSILON,
            entropy=cache._entropy, epoch=cache.draw_epoch,
            versions=cache._versions[verts],
        )
        for i, v in enumerate(verts):
            np.testing.assert_array_equal(cache.sketch_view(v), ref[i])
        if all_incremental:
            ever_dirty = set().union(*dirty_sets)
            for v in range(N_UPPER):
                if v not in ever_dirty:
                    np.testing.assert_array_equal(
                        cache.sketch_view(v), before[v]
                    )


class TestPairSketchDifferential:
    @given(scripts)
    @settings(max_examples=10, deadline=None)
    def test_pair_draws_equal_from_scratch(self, script):
        graph = _graph(51)
        cache = NoisyViewCache(
            graph, Layer.UPPER, EPSILON, mode=ExecutionMode.SKETCH,
            max_entries=10**6, rng=np.random.default_rng(25),
        )
        pairs = [(0, 1), (2, 9), (4, 17), (1, 9)]
        keys = np.array(pairs, dtype=np.int64)
        cache.sketch_fresh(keys)
        before = {k: cache._pair_counts[k] for k in map(tuple, pairs)}
        dirty_sets, all_incremental = _run_script(cache, script)
        ever_dirty = set().union(*dirty_sets)

        for a, b in pairs:
            key = cache.pair_key(a, b)
            clean = a not in ever_dirty and b not in ever_dirty
            if clean and all_incremental:
                assert cache.has_pair(a, b)
                assert cache._pair_counts[key] == before[key]
            if not cache.has_pair(a, b):
                cache.sketch_fresh(np.array([key], dtype=np.int64))
            # From-scratch oracle on the mutated graph with the combined
            # endpoint version.
            keyed = keyed_pair_generator(
                cache._entropy, cache.draw_epoch, *key,
                version=int(cache._versions[key[0]] + cache._versions[key[1]]),
            )
            n1, n2, _ = sketch_pair_counts(
                cache.graph, Layer.UPPER, np.array(key, dtype=np.int64),
                np.array([0]), np.array([1]), EPSILON, keyed,
            )
            assert cache._pair_counts[key] == (int(n1[0]), int(n2[0]))


class TestDegreeDifferential:
    @given(scripts)
    @settings(max_examples=10, deadline=None)
    def test_degree_releases_equal_from_scratch(self, script):
        graph = _graph(61)
        verts = np.arange(N_UPPER, dtype=np.int64)
        mech = LaplaceMechanism(1.0, degree_sensitivity())
        cache = NoisyViewCache(
            graph, Layer.UPPER, EPSILON, max_entries=10**6,
            rng=np.random.default_rng(26),
        )
        cache.degree_fresh(verts, mech)
        before = {int(v): cache.degree(v) for v in verts}
        dirty_sets, all_incremental = _run_script(cache, script)
        ever_dirty = set().union(*dirty_sets)

        missing = np.array(
            [v for v in range(N_UPPER) if not cache.has_degree(v)],
            dtype=np.int64,
        )
        if missing.size:
            cache.degree_fresh(missing, mech)
        true = cache.graph.degrees(Layer.UPPER)[verts].astype(np.float64)
        ref = true + keyed_laplace_noise(
            cache._entropy, cache.draw_epoch, verts, mech.scale,
            versions=cache._versions[verts],
        )
        for i, v in enumerate(verts):
            assert cache.degree(v) == ref[i]
            if all_incremental and int(v) not in ever_dirty:
                assert cache.degree(v) == before[int(v)]

"""Concurrency guarantees of the async serving layer.

The contract under contention: however many clients race into a tick,
(1) each distinct uncached vertex is charged exactly once per epoch —
never double-charged because two pairs happened to share it — and
(2) every caller's future resolves with the answer to *its own* pair.
Routing is proven with a near-noiseless budget (epsilon large enough
that the flip probability underflows to ~0), where each served estimate
must equal its pair's exact common-neighbor count.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import BudgetExceededError, GraphError, PrivacyError, ProtocolError
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.graph.sampling import QueryPair, sample_query_pairs
from repro.privacy.composition import QueryBudgetManager
from repro.protocol.session import ExecutionMode
from repro.serving import NoisyViewCache, QueryServer

MODES = (ExecutionMode.MATERIALIZE, ExecutionMode.SKETCH)
EPSILON = 2.0


@pytest.fixture()
def graph():
    return random_bipartite(60, 50, 520, rng=7)


class TestSingleChargeUnderContention:
    def test_racing_clients_coalesce_and_charge_each_vertex_once(self, graph):
        """40 star queries + 20 duplicates land in one burst: 41 distinct
        vertices, each charged exactly epsilon, nothing twice."""

        async def run():
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE, rng=3,
            ) as server:
                results = await asyncio.gather(
                    *(server.query(0, i) for i in range(1, 41)),
                    *(server.query(0, i) for i in range(1, 21)),
                )
                return server, results

        server, results = asyncio.run(run())
        assert len(results) == 60
        # The burst coalesced rather than running one engine call each.
        assert server.stats.ticks <= 2
        assert server.stats.max_coalesced >= 30
        # Exactly one charge per distinct uncached vertex (0..40), despite
        # vertex 0 joining all 60 pairs and 20 pairs arriving twice.
        accountant = server.accountant
        for vertex in range(41):
            assert accountant.lifetime_spent(Layer.UPPER, vertex) == pytest.approx(
                EPSILON
            ), f"vertex {vertex} was not charged exactly once"
        assert accountant.max_lifetime_spent() == pytest.approx(EPSILON)
        assert server.cache.stats.vertex_misses == 41
        assert server.ledger.max_spent() == pytest.approx(EPSILON)

    def test_two_waves_same_epoch_do_not_recharge(self, graph):
        async def run():
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE, rng=5,
            ) as server:
                await asyncio.gather(*(server.query(0, i) for i in range(1, 16)))
                first_wave = server.accountant.max_lifetime_spent()
                # Second wave overlaps the first's vertex set entirely.
                await asyncio.gather(*(server.query(i, 0) for i in range(1, 16)))
                return server, first_wave

        server, first_wave = asyncio.run(run())
        assert first_wave == pytest.approx(EPSILON)
        assert server.accountant.max_lifetime_spent() == pytest.approx(EPSILON)
        assert server.stats.ticks >= 2
        assert server.cache.stats.vertex_misses == 16
        assert server.cache.stats.vertex_hits >= 16


class TestRouting:
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_each_caller_gets_its_own_pair(self, graph, mode):
        """At epsilon=64 the flip probability underflows to ~1e-28, so a
        correctly routed answer equals the caller's exact count."""
        pairs = sample_query_pairs(graph, Layer.UPPER, 30, rng=2)

        async def run():
            async with QueryServer(
                graph, Layer.UPPER, 64.0, mode=mode, rng=9
            ) as server:
                return await asyncio.gather(
                    *(server.query_pair(pair) for pair in pairs)
                )

        results = asyncio.run(run())
        for pair, estimate in zip(pairs, results):
            assert estimate.pair == pair
            exact = graph.count_common_neighbors(Layer.UPPER, pair.a, pair.b)
            assert estimate.value == pytest.approx(exact, abs=1e-6), (
                f"estimate for {pair} does not match its exact count"
            )

    def test_duplicate_pair_callers_share_one_draw(self, graph):
        async def run():
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.SKETCH, rng=1,
            ) as server:
                return await asyncio.gather(
                    *(server.query(4, 9) for _ in range(6))
                )

        results = asyncio.run(run())
        values = {estimate.value for estimate in results}
        assert len(values) == 1  # one tick, one cached draw for all six


class TestLifecycleAndErrors:
    def test_stop_serves_pending_queries(self, graph):
        async def run():
            server = QueryServer(
                graph, Layer.UPPER, EPSILON, mode=ExecutionMode.MATERIALIZE, rng=2
            )
            await server.start()
            tasks = [
                asyncio.create_task(server.query(i, i + 1)) for i in range(8)
            ]
            await asyncio.sleep(0)  # let every client enqueue
            await server.stop()
            return await asyncio.gather(*tasks)

        results = asyncio.run(run())
        assert len(results) == 8
        assert all(np.isfinite(estimate.value) for estimate in results)

    def test_invalid_queries_fail_their_caller_only(self, graph):
        async def run():
            async with QueryServer(
                graph, Layer.UPPER, EPSILON, rng=4
            ) as server:
                good = asyncio.gather(*(server.query(0, i) for i in range(1, 5)))
                with pytest.raises(GraphError):
                    await server.query(3, 3)  # identical endpoints
                with pytest.raises(GraphError):
                    await server.query(0, 10_000)  # out of range
                return await good

        results = asyncio.run(run())
        assert len(results) == 4

    def test_query_requires_running_server(self, graph):
        server = QueryServer(graph, Layer.UPPER, EPSILON)

        async def run():
            await server.query(0, 1)

        with pytest.raises(ProtocolError):
            asyncio.run(run())

    def test_refused_charge_leaves_no_free_views(self, graph):
        """Fail closed: when the epoch allowance refuses a charge, no view
        (and no degree) may be cached — otherwise later queries would ride
        the uncharged draw for free."""

        async def run():
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE,
                degree_epsilon=0.5, epsilon_per_epoch=1.0, rng=3,
            ) as server:
                with pytest.raises(BudgetExceededError):
                    await server.query(0, 1)
                with pytest.raises(BudgetExceededError):
                    await server.query(0, 1)  # still refused, not a free hit
                return server

        server = asyncio.run(run())
        assert server.accountant.max_lifetime_spent() == 0.0
        assert server.cache.cached_vertices() == 0
        assert server.ledger.max_spent() == 0.0

    def test_materialize_epoch_cap_is_enforced(self, graph):
        """The auto epoch allowance equals epsilon (+ degree epsilon); a
        direct attempt to overcharge a vertex within the epoch is refused."""
        server = QueryServer(
            graph, Layer.UPPER, EPSILON, mode=ExecutionMode.MATERIALIZE
        )
        server.accountant.charge_vertices(Layer.UPPER, [3], EPSILON, "randomized-response")
        with pytest.raises(BudgetExceededError):
            server.accountant.charge_vertices(
                Layer.UPPER, [3], EPSILON, "randomized-response"
            )

    def test_budget_manager_cannot_fund_cached_batches(self, graph):
        from repro.engine.core import BatchQueryEngine

        cache = NoisyViewCache(graph, Layer.UPPER, EPSILON)
        engine = BatchQueryEngine()
        pair = QueryPair(Layer.UPPER, 0, 1)
        with pytest.raises(PrivacyError):
            engine.estimate_pairs(
                graph, Layer.UPPER, [pair],
                budget=QueryBudgetManager(4.0, num_queries=2),
                cache=cache,
            )

    def test_cache_refuses_mismatched_epsilon(self, graph):
        from repro.engine.core import BatchQueryEngine

        cache = NoisyViewCache(graph, Layer.UPPER, EPSILON)
        engine = BatchQueryEngine()
        pair = QueryPair(Layer.UPPER, 0, 1)
        with pytest.raises(ProtocolError):
            engine.estimate_pairs(graph, Layer.UPPER, [pair], 1.0, cache=cache)


class TestServedApplications:
    def test_top_k_similar_served_charges_each_candidate_once(self, graph):
        from repro.applications.similarity import top_k_similar_served

        candidates = list(range(1, 21))

        async def run():
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE, degree_epsilon=0.5, rng=6,
            ) as server:
                ranked = await top_k_similar_served(server, 0, candidates, k=5)
                # A second, overlapping screen in the same epoch is free.
                again = await top_k_similar_served(server, 0, candidates, k=5)
                return server, ranked, again

        server, ranked, again = asyncio.run(run())
        assert len(ranked) == 5
        assert all(0.0 <= est.value <= 1.0 for _, est in ranked)
        # One RR charge + one degree charge per vertex, never more.
        assert server.accountant.max_lifetime_spent() == pytest.approx(
            EPSILON + 0.5
        )
        assert [c for c, _ in ranked] == [c for c, _ in again]

    def test_top_k_similar_served_needs_degrees(self, graph):
        from repro.applications.similarity import top_k_similar_served
        from repro.errors import ReproError

        async def run():
            async with QueryServer(graph, Layer.UPPER, EPSILON, rng=6) as server:
                await top_k_similar_served(server, 0, [1, 2, 3], k=2)

        with pytest.raises(ReproError):
            asyncio.run(run())

    def test_recommend_items_served(self, graph):
        from repro.applications.recommendation import recommend_items_served

        async def run():
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE, degree_epsilon=0.5, rng=8,
            ) as server:
                return await recommend_items_served(
                    server, 0, list(range(1, 16)), epsilon_lists=1.0,
                    k=4, top_items=5, rng=9,
                )

        recommendations = asyncio.run(run())
        assert len(recommendations) <= 5
        owned = set(graph.neighbors(Layer.UPPER, 0).tolist())
        assert all(rec.item not in owned for rec in recommendations)

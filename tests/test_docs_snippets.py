"""The documentation runs: README + docs/ code snippets and links.

Docs rot in two ways — code blocks drift from the API, and intra-repo
links drift from the file tree. This module pins both:

* every fenced ``python`` block in ``README.md`` and ``docs/*.md`` is
  executed verbatim (each in a fresh namespace, as a reader pasting it
  would). A block can opt out by placing ``<!-- no-run -->`` on the
  line directly above its fence; ``bash``/output fences are ignored.
* every relative markdown link in those files (and in the top-level
  meta documents) must resolve to an existing file or directory.

The snippets double as acceptance tests: the serving-guide blocks
assert the tenant metering, eviction bit-identity and accountant
numbers they print.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
SNIPPET_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
LINK_FILES = SNIPPET_FILES + [REPO / "ROADMAP.md", REPO / "CHANGES.md"]

NO_RUN_MARKER = "<!-- no-run -->"
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def extract_python_blocks(path: Path) -> list[tuple[int, str]]:
    """``(first_line, source)`` for every runnable python fence in ``path``."""
    blocks: list[tuple[int, str]] = []
    lines = path.read_text().splitlines()
    inside = False
    runnable = True
    start = 0
    buffer: list[str] = []
    for i, line in enumerate(lines):
        stripped = line.strip()
        if not inside and stripped.startswith("```"):
            language = stripped.removeprefix("```").strip()
            inside = True
            collect = language == "python"
            if collect:
                start = i + 2
                buffer = []
                runnable = not (
                    i > 0 and lines[i - 1].strip() == NO_RUN_MARKER
                )
            continue
        if inside and stripped == "```":
            inside = False
            if collect and runnable and buffer:
                blocks.append((start, "\n".join(buffer)))
            collect = False
            continue
        if inside and collect:
            buffer.append(line)
    return blocks


SNIPPETS = [
    pytest.param(path, line, source, id=f"{path.name}:L{line}")
    for path in SNIPPET_FILES
    if path.exists()
    for line, source in extract_python_blocks(path)
]


def test_docs_exist():
    """The documented docs/ tree is actually there (and linked targets)."""
    for name in ("architecture.md", "privacy-semantics.md", "serving-guide.md"):
        assert (REPO / "docs" / name).is_file(), f"docs/{name} is missing"
    assert SNIPPETS, "no runnable snippets found — extraction broken?"


@pytest.mark.parametrize("path,line,source", SNIPPETS)
def test_snippet_runs(path: Path, line: int, source: str):
    code = compile(source, f"{path.name}:L{line}", "exec")
    namespace: dict = {"__name__": "__main__"}
    exec(code, namespace)  # noqa: S102 - executing our own documentation


@pytest.mark.parametrize(
    "path", [p for p in LINK_FILES if p.exists()], ids=lambda p: p.name
)
def test_intra_repo_links_resolve(path: Path):
    broken = []
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#")[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name} has broken intra-repo links: {broken}"

"""Tests for budget splits, the ledger, and sensitivity constants."""

from __future__ import annotations

import math

import pytest

from repro.errors import BudgetExceededError, PrivacyError
from repro.privacy.accountant import PrivacyLedger
from repro.privacy.budget import BudgetSplit
from repro.privacy.mechanisms import flip_probability
from repro.privacy.sensitivity import (
    central_c2_sensitivity,
    degree_sensitivity,
    single_source_sensitivity,
)


class TestBudgetSplit:
    def test_single_round(self):
        split = BudgetSplit.single_round(2.0)
        assert split.graph == 2.0
        assert split.degree == 0.0
        assert split.estimator == 0.0
        assert split.matches_total(2.0)

    def test_even(self):
        split = BudgetSplit.even(2.0)
        assert split.graph == pytest.approx(1.0)
        assert split.estimator == pytest.approx(1.0)
        assert split.matches_total(2.0)

    def test_with_fraction(self):
        split = BudgetSplit.with_fraction(2.0, 0.3)
        assert split.graph == pytest.approx(0.6)
        assert split.estimator == pytest.approx(1.4)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5])
    def test_with_fraction_invalid(self, bad):
        with pytest.raises(PrivacyError):
            BudgetSplit.with_fraction(2.0, bad)

    def test_three_round(self):
        split = BudgetSplit.three_round(2.0, 0.05, 1.0)
        assert split.degree == pytest.approx(0.1)
        assert split.graph == pytest.approx(1.0)
        assert split.estimator == pytest.approx(0.9)
        assert split.matches_total(2.0)

    def test_three_round_overcommitted_graph(self):
        with pytest.raises(PrivacyError):
            BudgetSplit.three_round(2.0, 0.05, 1.95)

    def test_negative_component_rejected(self):
        with pytest.raises(PrivacyError):
            BudgetSplit(degree=-0.1, graph=1.0, estimator=0.5)

    def test_zero_graph_rejected(self):
        with pytest.raises(PrivacyError):
            BudgetSplit(degree=0.0, graph=0.0, estimator=1.0)

    def test_matches_total_tolerance(self):
        split = BudgetSplit(degree=0.1, graph=1.0, estimator=0.9)
        assert split.matches_total(2.0)
        assert not split.matches_total(2.1)


class TestPrivacyLedger:
    def test_sequential_composition_sums(self):
        ledger = PrivacyLedger()
        ledger.charge("u", 0.5, "rr")
        ledger.charge("u", 0.7, "laplace")
        assert ledger.spent("u") == pytest.approx(1.2)

    def test_parties_are_independent(self):
        ledger = PrivacyLedger()
        ledger.charge("u", 1.0)
        ledger.charge("w", 0.5)
        assert ledger.spent("u") == 1.0
        assert ledger.spent("w") == 0.5
        assert ledger.max_spent() == 1.0

    def test_limit_enforced(self):
        ledger = PrivacyLedger(limit=1.0)
        ledger.charge("u", 0.8)
        with pytest.raises(BudgetExceededError) as exc:
            ledger.charge("u", 0.3)
        assert exc.value.party == "u"

    def test_limit_allows_exact_total(self):
        ledger = PrivacyLedger(limit=1.0)
        ledger.charge("u", 0.5)
        ledger.charge("u", 0.5)
        assert ledger.spent("u") == pytest.approx(1.0)

    def test_limit_tolerates_fp_noise(self):
        ledger = PrivacyLedger(limit=2.0)
        for _ in range(3):
            ledger.charge("u", 2.0 / 3.0)
        assert ledger.spent("u") == pytest.approx(2.0)

    def test_zero_charge_is_free(self):
        ledger = PrivacyLedger(limit=0.5)
        ledger.charge("u", 0.0)
        assert ledger.spent("u") == 0.0
        assert ledger.charges == []

    def test_negative_charge_rejected(self):
        with pytest.raises(PrivacyError):
            PrivacyLedger().charge("u", -0.1)

    def test_charge_many_parallel_composition(self):
        ledger = PrivacyLedger()
        ledger.charge_many(["a", "b", "c"], 0.2, "degree")
        assert ledger.max_spent() == pytest.approx(0.2)
        assert ledger.parties() == ["a", "b", "c"]

    def test_assert_within(self):
        ledger = PrivacyLedger()
        ledger.charge("u", 1.5)
        ledger.assert_within(2.0)
        with pytest.raises(BudgetExceededError):
            ledger.assert_within(1.0)

    def test_charges_recorded_with_labels(self):
        ledger = PrivacyLedger()
        ledger.charge("u", 0.5, "rr", "round1")
        charge = ledger.charges[0]
        assert charge.mechanism == "rr"
        assert charge.round_label == "round1"

    def test_empty_ledger(self):
        ledger = PrivacyLedger()
        assert ledger.max_spent() == 0.0
        assert ledger.parties() == []
        ledger.assert_within(0.0)


class TestSensitivities:
    def test_degree_sensitivity(self):
        assert degree_sensitivity() == 1.0

    def test_central_sensitivity(self):
        assert central_c2_sensitivity() == 1.0

    def test_single_source_matches_formula(self):
        for eps in (0.5, 1.0, 2.0):
            p = flip_probability(eps)
            assert single_source_sensitivity(eps) == pytest.approx(
                (1 - p) / (1 - 2 * p)
            )

    def test_single_source_exceeds_one(self):
        # (1-p)/(1-2p) > 1 for every p in (0, 1/2): the RR de-biasing
        # amplifies one bit's influence beyond a raw count's.
        for eps in (0.5, 1.0, 3.0):
            assert single_source_sensitivity(eps) > 1.0

    def test_single_source_decreasing_in_epsilon(self):
        values = [single_source_sensitivity(e) for e in (0.5, 1.0, 2.0, 4.0)]
        assert values == sorted(values, reverse=True)

    def test_single_source_limit_is_one(self):
        assert single_source_sensitivity(30.0) == pytest.approx(1.0, abs=1e-8)


class TestRngHelpers:
    def test_ensure_rng_accepts_seed(self):
        from repro.privacy.rng import ensure_rng

        a = ensure_rng(7)
        b = ensure_rng(7)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_ensure_rng_passthrough(self, rng):
        from repro.privacy.rng import ensure_rng

        assert ensure_rng(rng) is rng

    def test_spawn_rngs_independent(self):
        from repro.privacy.rng import spawn_rngs

        children = spawn_rngs(3, 4)
        draws = [c.integers(0, 2**32) for c in children]
        assert len(set(draws)) == 4

    def test_spawn_rngs_deterministic(self):
        from repro.privacy.rng import spawn_rngs

        a = [c.integers(0, 1000) for c in spawn_rngs(5, 3)]
        b = [c.integers(0, 1000) for c in spawn_rngs(5, 3)]
        assert a == b

    def test_spawn_rngs_negative_count(self):
        from repro.privacy.rng import spawn_rngs

        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_spawn_rngs_zero(self):
        from repro.privacy.rng import spawn_rngs

        assert spawn_rngs(1, 0) == []

"""Sharded bulk RR: plan sizing, shard-boundary invariance, the runner.

The contract under test (``docs/sharding-guide.md``): shard boundaries
are *invisible* in the drawn bits. Any split of a workload's vertex
block into contiguous ranges — one per worker, empty, or one vertex per
shard — must reassemble to the byte-identical noisy rows and therefore
identical N1 estimates, because every vertex draws from its private
keyed Philox stream.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.bulkrr import (
    keyed_bulk_randomized_response,
    merge_csr_fragments,
    shard_bulk_randomized_response,
)
from repro.engine.core import BatchQueryEngine
from repro.engine.pairwise import pairwise_intersections
from repro.engine.planner import (
    estimate_noisy_row_bytes,
    plan_shards,
)
from repro.engine.sharded import ShardedRunner, fork_available
from repro.errors import GraphError, ProtocolError
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.graph.sampling import sample_query_pairs
from repro.serving.cache import NoisyViewCache
from repro.serving.server import QueryServer
from repro.protocol.session import ExecutionMode

EPS = 2.0


@pytest.fixture(scope="module")
def graph():
    return random_bipartite(120, 80, 900, rng=13)


# ----------------------------------------------------------------------
# ShardPlan sizing
# ----------------------------------------------------------------------
class TestPlanShards:
    def test_explicit_count_tiles_the_block(self, graph):
        verts = np.arange(120, dtype=np.int64)
        plan = plan_shards(graph, Layer.UPPER, verts, EPS, shards=4)
        assert plan.num_shards == 4
        ranges = plan.ranges()
        assert ranges[0][0] == 0 and ranges[-1][1] == 120
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo  # contiguous, disjoint, in order

    def test_memory_budget_respected(self, graph):
        verts = np.arange(120, dtype=np.int64)
        per_vertex = estimate_noisy_row_bytes(
            graph.degrees(Layer.UPPER)[verts], 80, EPS
        )
        budget = int(per_vertex.sum() / 5)
        plan = plan_shards(graph, Layer.UPPER, verts, EPS, mem_bytes=budget)
        assert plan.num_shards >= 5
        # Every multi-vertex shard fits the budget (a single indivisible
        # row may exceed it; none does on this graph).
        assert (plan.est_bytes <= budget).all()
        # int64 truncation per shard, so the sum is within num_shards bytes
        assert abs(int(plan.est_bytes.sum()) - per_vertex.sum()) <= (
            plan.num_shards
        )

    def test_oversized_single_vertex_still_gets_a_shard(self, graph):
        verts = np.arange(10, dtype=np.int64)
        plan = plan_shards(graph, Layer.UPPER, verts, EPS, mem_bytes=1)
        assert plan.num_shards == 10  # one (over-budget) vertex per shard
        assert all(hi - lo == 1 for lo, hi in plan.ranges())

    def test_more_shards_than_vertices_collapses(self, graph):
        plan = plan_shards(
            graph, Layer.UPPER, np.arange(3, dtype=np.int64), EPS, shards=8
        )
        assert plan.num_shards <= 3
        assert plan.ranges()[-1][1] == 3

    def test_empty_block_zero_shards(self, graph):
        plan = plan_shards(
            graph, Layer.UPPER, np.empty(0, dtype=np.int64), EPS, shards=2
        )
        assert plan.num_shards == 0
        assert plan.max_shard_bytes == 0

    def test_rejects_conflicting_and_invalid_sizing(self, graph):
        verts = np.arange(5, dtype=np.int64)
        with pytest.raises(ProtocolError):
            plan_shards(
                graph, Layer.UPPER, verts, EPS, shards=2, mem_bytes=100
            )
        with pytest.raises(ProtocolError):
            plan_shards(graph, Layer.UPPER, verts, EPS, shards=0)
        with pytest.raises(ProtocolError):
            plan_shards(graph, Layer.UPPER, verts, EPS, mem_bytes=0)
        with pytest.raises(GraphError):
            plan_shards(graph, Layer.UPPER, np.array([500]), EPS, shards=1)


# ----------------------------------------------------------------------
# Shard-boundary invariance (the determinism contract)
# ----------------------------------------------------------------------
class TestShardInvariance:
    @settings(max_examples=25, deadline=None)
    @given(
        num_shards=st.sampled_from([1, 2, 4]),
        entropy=st.integers(min_value=0, max_value=2**60),
        data=st.data(),
    )
    def test_any_split_is_byte_identical(self, num_shards, entropy, data):
        """Property: every 1/2/4-way split yields byte-identical rows
        and identical N1 estimates to the unsharded pass."""
        graph = random_bipartite(60, 40, 350, rng=17)
        verts = np.arange(60, dtype=np.int64)
        # Arbitrary split points, not just balanced ones.
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=60),
                    min_size=num_shards - 1,
                    max_size=num_shards - 1,
                )
            )
        )
        bounds = [0, *cuts, 60]
        ranges = list(zip(bounds[:-1], bounds[1:]))
        full = keyed_bulk_randomized_response(
            graph, Layer.UPPER, verts, EPS, entropy=entropy, epoch=3
        )
        sharded = shard_bulk_randomized_response(
            graph, Layer.UPPER, verts, EPS,
            entropy=entropy, epoch=3, ranges=ranges,
        )
        np.testing.assert_array_equal(sharded[0], full[0])
        np.testing.assert_array_equal(sharded[1], full[1])
        ia = np.arange(30, dtype=np.int64)
        ib = ia + 30
        n1_full = pairwise_intersections(full[0], full[1], ia, ib, 40)
        n1_shard = pairwise_intersections(sharded[0], sharded[1], ia, ib, 40)
        np.testing.assert_array_equal(n1_shard, n1_full)

    def test_degenerate_shards_empty_and_single_vertex(self, graph):
        verts = np.arange(20, dtype=np.int64)
        full = keyed_bulk_randomized_response(
            graph, Layer.UPPER, verts, EPS, entropy=11, epoch=0
        )
        # Empty ranges at the front, middle and back; single-vertex runs.
        ranges = [(0, 0), (0, 1), (1, 1), (1, 2), (2, 19), (19, 20), (20, 20)]
        sharded = shard_bulk_randomized_response(
            graph, Layer.UPPER, verts, EPS,
            entropy=11, epoch=0, ranges=ranges,
        )
        np.testing.assert_array_equal(sharded[0], full[0])
        np.testing.assert_array_equal(sharded[1], full[1])

    def test_empty_block(self, graph):
        indptr, columns = shard_bulk_randomized_response(
            graph, Layer.UPPER, np.empty(0, dtype=np.int64), EPS,
            entropy=1, epoch=0, ranges=[],
        )
        assert indptr.tolist() == [0] and columns.size == 0

    def test_non_tiling_ranges_rejected(self, graph):
        verts = np.arange(10, dtype=np.int64)
        for ranges in ([(0, 5)], [(0, 5), (6, 10)], [(2, 10)]):
            with pytest.raises(GraphError):
                shard_bulk_randomized_response(
                    graph, Layer.UPPER, verts, EPS,
                    entropy=1, epoch=0, ranges=ranges,
                )

    def test_merge_csr_fragments_empty(self):
        indptr, columns = merge_csr_fragments([])
        assert indptr.tolist() == [0] and columns.size == 0


# ----------------------------------------------------------------------
# The process-parallel runner
# ----------------------------------------------------------------------
class TestShardedRunner:
    def test_inline_runner_matches_serial(self, graph):
        verts = np.arange(120, dtype=np.int64)
        plan = plan_shards(graph, Layer.UPPER, verts, EPS, shards=3)
        full = keyed_bulk_randomized_response(
            graph, Layer.UPPER, verts, EPS, entropy=21, epoch=2
        )
        with ShardedRunner(graph, Layer.UPPER, max_workers=1) as runner:
            assert not runner.parallel
            draw = runner.draw(plan, EPS, entropy=21, epoch=2)
        np.testing.assert_array_equal(draw.indptr, full[0])
        np.testing.assert_array_equal(draw.columns, full[1])
        assert len(draw.shards) == 3
        assert sum(s["noisy_ids"] for s in draw.shards) == full[1].size

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_process_runner_matches_serial(self, graph):
        verts = np.arange(120, dtype=np.int64)
        plan = plan_shards(graph, Layer.UPPER, verts, EPS, shards=4)
        full = keyed_bulk_randomized_response(
            graph, Layer.UPPER, verts, EPS, entropy=33, epoch=1
        )
        with ShardedRunner(graph, Layer.UPPER, max_workers=2) as runner:
            assert runner.parallel
            draw = runner.draw(plan, EPS, entropy=33, epoch=1)
            np.testing.assert_array_equal(draw.indptr, full[0])
            np.testing.assert_array_equal(draw.columns, full[1])
            # Reusable after close (a restarted server reuses its runner).
            runner.close()
            again = runner.draw(plan, EPS, entropy=33, epoch=1)
            np.testing.assert_array_equal(again.columns, full[1])

    def test_pairwise_reduce_rechooses_backend_per_block(self, graph):
        verts = np.arange(120, dtype=np.int64)
        plan = plan_shards(graph, Layer.UPPER, verts, EPS, shards=3)
        full = keyed_bulk_randomized_response(
            graph, Layer.UPPER, verts, EPS, entropy=5, epoch=0
        )
        rng = np.random.default_rng(0)
        ia = rng.integers(0, 120, 200)
        ib = (ia + 1 + rng.integers(0, 118, 200)) % 120
        ref = pairwise_intersections(full[0], full[1], ia, ib, 80)
        with ShardedRunner(graph, Layer.UPPER, max_workers=1) as runner:
            n1, blocks = runner.pairwise(plan, full[0], full[1], ia, ib, 80)
        np.testing.assert_array_equal(n1, ref)
        assert blocks  # every populated block logged its own choice
        for block in blocks:
            assert block["backend"] in {"bitset", "sparse", "merge"}
            s, t = block["block"]
            assert 0 <= s <= t < plan.num_shards
        assert sum(b["pairs"] for b in blocks) == 200

    def test_rejects_nonpositive_workers(self, graph):
        with pytest.raises(ProtocolError):
            ShardedRunner(graph, Layer.UPPER, max_workers=0)

    def test_dropped_runner_releases_its_context(self, graph):
        """A runner dropped without close() must not pin the graph in
        the module context registry (GC finalizer)."""
        import gc

        from repro.engine import sharded as sharded_mod

        runner = ShardedRunner(graph, Layer.UPPER, max_workers=1)
        token = runner._token
        assert token in sharded_mod._WORKER_CONTEXTS
        del runner
        gc.collect()
        assert token not in sharded_mod._WORKER_CONTEXTS


# ----------------------------------------------------------------------
# Engine and serving integration
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_shard_count_never_changes_estimates(self, graph):
        """End to end: same seed, different shard counts -> identical
        estimates (the engine derives entropy from its rng, and the
        keyed draw is shard-invariant)."""
        pairs = sample_query_pairs(graph, Layer.UPPER, 150, rng=2)
        values = []
        for shards in (1, 2, 4):
            with BatchQueryEngine(shards=shards) as engine:
                result = engine.estimate_pairs(
                    graph, Layer.UPPER, pairs, epsilon=EPS, rng=9
                )
            values.append(result.values)
            details = result.details["shards"]
            assert details["count"] == min(shards, 120)
            assert result.details["backend"] == "sharded"
            assert all(
                b["backend"] in {"bitset", "sparse", "merge"}
                for b in details["pairwise"]
            )
        np.testing.assert_array_equal(values[0], values[1])
        np.testing.assert_array_equal(values[0], values[2])

    def test_mem_budget_engine_matches_counted(self, graph):
        pairs = sample_query_pairs(graph, Layer.UPPER, 60, rng=3)
        with BatchQueryEngine(shards=2) as by_count:
            a = by_count.estimate_pairs(
                graph, Layer.UPPER, pairs, epsilon=EPS, rng=4
            )
        with BatchQueryEngine(shard_mem_bytes=10_000) as by_mem:
            b = by_mem.estimate_pairs(
                graph, Layer.UPPER, pairs, epsilon=EPS, rng=4
            )
        np.testing.assert_array_equal(a.values, b.values)
        assert b.details["shards"]["mem_bytes"] == 10_000

    def test_engine_combines_worker_cap_with_mem_budget(self, graph):
        """`shards` + `shard_mem_bytes` together mean: budget sizes the
        ranges, shards caps the workers (the server's semantics)."""
        pairs = sample_query_pairs(graph, Layer.UPPER, 40, rng=8)
        with BatchQueryEngine(shards=2, shard_mem_bytes=10_000) as engine:
            result = engine.estimate_pairs(
                graph, Layer.UPPER, pairs, epsilon=EPS, rng=4
            )
            assert engine._runner.max_workers == 2
        assert result.details["shards"]["mem_bytes"] == 10_000

    def test_engine_rejects_invalid_shard_options(self):
        with pytest.raises(ProtocolError):
            BatchQueryEngine(shards=0)
        with pytest.raises(ProtocolError):
            BatchQueryEngine(shard_mem_bytes=-5)

    def test_unsharded_engine_has_no_shard_details(self, graph):
        pairs = sample_query_pairs(graph, Layer.UPPER, 10, rng=5)
        result = BatchQueryEngine().estimate_pairs(
            graph, Layer.UPPER, pairs, epsilon=EPS, rng=6
        )
        assert "shards" not in result.details


class TestServingIntegration:
    def test_sharded_cache_draw_is_bit_identical_to_unsharded(self, graph):
        verts = np.arange(50, dtype=np.int64)
        with ShardedRunner(graph, Layer.UPPER, max_workers=1) as runner:
            sharded = NoisyViewCache(
                graph, Layer.UPPER, EPS,
                mode=ExecutionMode.MATERIALIZE,
                rng=7, shard_runner=runner, shard_mem_bytes=4_000,
            )
            plain = NoisyViewCache(
                graph, Layer.UPPER, EPS,
                mode=ExecutionMode.MATERIALIZE,
                max_entries=1000, rng=7,  # bounded: keyed, same entropy seed
            )
            assert sharded.keyed and sharded._entropy == plain._entropy
            sharded.materialize_fresh(verts)
            plain.materialize_fresh(verts)
            assert len(sharded.last_shard_draw) >= 2
            for v in (0, 17, 49):
                np.testing.assert_array_equal(sharded.view(v), plain.view(v))

    def test_sharded_bounded_cache_redraws_evicted_views_identically(
        self, graph
    ):
        with ShardedRunner(graph, Layer.UPPER, max_workers=1) as runner:
            cache = NoisyViewCache(
                graph, Layer.UPPER, EPS,
                mode=ExecutionMode.MATERIALIZE,
                max_entries=8, rng=3, shard_runner=runner,
            )
            verts = np.arange(20, dtype=np.int64)
            cache.materialize_fresh(verts)
            originals = {v: cache.view(v).copy() for v in range(3)}
            cache.evict_to_budget()
            assert cache.stats.evictions > 0
            redraw = np.array(
                [v for v in range(3) if not cache.has_view(v)], dtype=np.int64
            )
            assert redraw.size  # the oldest views were evicted
            cache.materialize_fresh(redraw)
            for v in redraw:
                np.testing.assert_array_equal(
                    cache.view(int(v)), originals[int(v)]
                )
            assert not cache.uncharged(redraw).size  # recharge-free

    def test_server_with_shards_serves_and_logs(self, graph):
        async def drive():
            async with QueryServer(
                graph, Layer.UPPER, EPS, rng=1, shards=2,
            ) as server:
                first = await asyncio.gather(
                    server.query(3, 7), server.query(8, 11)
                )
                replay = await server.query(3, 7)
                return first, replay, list(server.cache.last_shard_draw)

        first, replay, shard_log = asyncio.run(drive())
        assert not first[0].cache_hit and replay.cache_hit
        assert first[0].value == replay.value  # same epoch view, bit for bit
        assert shard_log == []  # the replay tick drew nothing

    def test_server_rejects_invalid_shard_options(self, graph):
        with pytest.raises(ProtocolError):
            QueryServer(graph, Layer.UPPER, EPS, shards=0)
        with pytest.raises(ProtocolError):
            QueryServer(graph, Layer.UPPER, EPS, shard_mem_bytes=-1)

    def test_cache_rejects_mismatched_runner(self, graph):
        other = random_bipartite(50, 40, 300, rng=1)
        with ShardedRunner(other, Layer.UPPER, max_workers=1) as runner:
            with pytest.raises(ProtocolError):
                NoisyViewCache(
                    graph, Layer.UPPER, EPS,
                    mode=ExecutionMode.MATERIALIZE, shard_runner=runner,
                )

"""Tests for experiment-result export (CSV/JSON round trips)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.export import (
    load_panel,
    panel_from_json,
    panel_to_csv,
    panel_to_json,
    save_panels,
)
from repro.experiments.report import SeriesPanel


@pytest.fixture()
def panel() -> SeriesPanel:
    p = SeriesPanel("Fig. X — demo", "eps", [1.0, 2.0, 3.0], y_label="MAE")
    p.add("naive", [10.0, 5.0, 2.0])
    p.add("multir-ds", [1.0, 0.5, 0.25])
    return p


class TestCsv:
    def test_header_and_rows(self, panel):
        lines = panel_to_csv(panel).strip().splitlines()
        assert lines[0] == "eps,naive,multir-ds"
        assert len(lines) == 4
        assert lines[1].startswith("1.0,")

    def test_values_parse_back(self, panel):
        import csv as csv_mod
        import io

        rows = list(csv_mod.reader(io.StringIO(panel_to_csv(panel))))
        assert float(rows[2][1]) == 5.0


class TestJson:
    def test_round_trip(self, panel):
        restored = panel_from_json(panel_to_json(panel))
        assert restored.title == panel.title
        assert restored.x_values == panel.x_values
        assert restored.series == panel.series
        assert restored.y_label == panel.y_label

    def test_json_is_valid(self, panel):
        payload = json.loads(panel_to_json(panel))
        assert payload["x_label"] == "eps"
        assert "naive" in payload["series"]

    def test_missing_y_label_defaults(self):
        payload = {
            "title": "t",
            "x_label": "x",
            "x_values": [1],
            "series": {"a": [2.0]},
        }
        restored = panel_from_json(json.dumps(payload))
        assert restored.y_label == "mean absolute error"


class TestSaveLoad:
    def test_save_all_formats(self, panel, tmp_path):
        written = save_panels([panel, panel], tmp_path, stem="figx")
        names = sorted(p.name for p in written)
        assert names == [
            "figx_0.csv",
            "figx_0.json",
            "figx_0.txt",
            "figx_1.csv",
            "figx_1.json",
            "figx_1.txt",
        ]
        for path in written:
            assert path.read_text()

    def test_load_saved_panel(self, panel, tmp_path):
        save_panels([panel], tmp_path, stem="one", formats=("json",))
        restored = load_panel(tmp_path / "one_0.json")
        assert restored.series == panel.series

    def test_unknown_format(self, panel, tmp_path):
        with pytest.raises(ValueError):
            save_panels([panel], tmp_path, stem="x", formats=("xml",))

    def test_creates_directory(self, panel, tmp_path):
        target = tmp_path / "nested" / "dir"
        save_panels([panel], target, stem="p", formats=("json",))
        assert (target / "p_0.json").exists()

"""Tests for the regression-comparison utility."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.experiments.export import save_panels
from repro.experiments.regression import compare_panels, compare_result_dirs
from repro.experiments.report import SeriesPanel


def _panel(values_a=(1.0, 2.0), values_b=(3.0, 4.0)) -> SeriesPanel:
    panel = SeriesPanel("P", "x", [1, 2])
    panel.add("a", list(values_a))
    panel.add("b", list(values_b))
    return panel


class TestComparePanels:
    def test_identical_panels_clean(self):
        assert compare_panels(_panel(), _panel()) == []

    def test_within_tolerance_clean(self):
        candidate = _panel(values_a=(1.1, 2.2))
        assert compare_panels(_panel(), candidate, rel_tol=0.25) == []

    def test_deviation_reported(self):
        candidate = _panel(values_a=(2.0, 2.0))
        deviations = compare_panels(_panel(), candidate, rel_tol=0.25)
        assert len(deviations) == 1
        dev = deviations[0]
        assert dev.series == "a"
        assert dev.x_value == 1
        assert dev.relative_change == pytest.approx(1.0)

    def test_nan_pairs_ignored(self):
        base = _panel(values_a=(float("nan"), 2.0))
        cand = _panel(values_a=(float("nan"), 2.0))
        assert compare_panels(base, cand) == []

    def test_x_axis_mismatch_raises(self):
        other = SeriesPanel("P", "x", [1, 3])
        other.add("a", [1.0, 2.0])
        other.add("b", [3.0, 4.0])
        with pytest.raises(ReproError):
            compare_panels(_panel(), other)

    def test_series_mismatch_raises(self):
        other = SeriesPanel("P", "x", [1, 2])
        other.add("a", [1.0, 2.0])
        with pytest.raises(ReproError):
            compare_panels(_panel(), other)


class TestCompareDirs:
    def test_directory_round_trip(self, tmp_path):
        base_dir = tmp_path / "base"
        cand_dir = tmp_path / "cand"
        save_panels([_panel()], base_dir, stem="fig", formats=("json",))
        save_panels([_panel(values_a=(1.05, 2.0))], cand_dir, stem="fig", formats=("json",))
        assert compare_result_dirs(base_dir, cand_dir, rel_tol=0.25) == []

    def test_drift_detected(self, tmp_path):
        base_dir = tmp_path / "base"
        cand_dir = tmp_path / "cand"
        save_panels([_panel()], base_dir, stem="fig", formats=("json",))
        save_panels([_panel(values_b=(30.0, 4.0))], cand_dir, stem="fig", formats=("json",))
        deviations = compare_result_dirs(base_dir, cand_dir)
        assert len(deviations) == 1
        assert deviations[0].series == "b"

    def test_missing_panel_raises(self, tmp_path):
        base_dir = tmp_path / "base"
        cand_dir = tmp_path / "cand"
        save_panels([_panel()], base_dir, stem="fig", formats=("json",))
        cand_dir.mkdir()
        with pytest.raises(ReproError):
            compare_result_dirs(base_dir, cand_dir)

    def test_empty_baseline_raises(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        with pytest.raises(ReproError):
            compare_result_dirs(tmp_path / "a", tmp_path / "b")

"""Tests for the budget planner (inverse loss model)."""

from __future__ import annotations

import pytest

from repro.analysis.planner import (
    epsilon_for_target_loss,
    epsilon_for_target_mae,
    predicted_loss_at,
)
from repro.errors import OptimizationError, ReproError


class TestForwardModel:
    @pytest.mark.parametrize(
        "algorithm", ["oner", "multir-ss", "multir-ds", "central-dp"]
    )
    def test_loss_decreases_in_epsilon(self, algorithm):
        losses = [
            predicted_loss_at(eps, algorithm, 30, 80, 5000)
            for eps in (0.5, 1.0, 2.0, 4.0)
        ]
        assert losses == sorted(losses, reverse=True)

    def test_unsupported_algorithm(self):
        with pytest.raises(ReproError):
            predicted_loss_at(2.0, "naive", 30, 80, 5000)


class TestInverse:
    @pytest.mark.parametrize(
        "algorithm", ["oner", "multir-ss", "multir-ds", "central-dp"]
    )
    def test_round_trip(self, algorithm):
        """loss(epsilon_for(target)) must hit the target from below."""
        target = 25.0
        eps = epsilon_for_target_loss(target, algorithm, 30, 80, 5000)
        achieved = predicted_loss_at(eps, algorithm, 30, 80, 5000)
        assert achieved <= target * (1 + 1e-3)
        # Minimality: a meaningfully smaller budget misses the target.
        if eps > 2e-3:
            worse = predicted_loss_at(eps * 0.9, algorithm, 30, 80, 5000)
            assert worse > target * (1 - 1e-3)

    def test_harder_target_needs_more_budget(self):
        loose = epsilon_for_target_loss(100.0, "multir-ds", 30, 80, 5000)
        tight = epsilon_for_target_loss(5.0, "multir-ds", 30, 80, 5000)
        assert tight > loose

    def test_bigger_pool_costs_oner_more(self):
        small = epsilon_for_target_loss(50.0, "oner", 30, 80, 1000)
        large = epsilon_for_target_loss(50.0, "oner", 30, 80, 100_000)
        assert large > small

    def test_multir_indifferent_to_pool(self):
        a = epsilon_for_target_loss(50.0, "multir-ss", 30, 80, 1000)
        b = epsilon_for_target_loss(50.0, "multir-ss", 30, 80, 100_000)
        assert a == pytest.approx(b)

    def test_unreachable_target_raises(self):
        with pytest.raises(OptimizationError):
            epsilon_for_target_loss(1e-9, "multir-ss", 10_000, 10_000, 100)

    def test_invalid_target(self):
        with pytest.raises(OptimizationError):
            epsilon_for_target_loss(0.0, "oner", 10, 10, 100)

    def test_mae_variant(self):
        eps = epsilon_for_target_mae(3.0, "multir-ds", 30, 80, 5000)
        achieved = predicted_loss_at(eps, "multir-ds", 30, 80, 5000)
        assert achieved <= (3.0 / 0.8) ** 2 * (1 + 1e-3)

    def test_mae_invalid(self):
        with pytest.raises(OptimizationError):
            epsilon_for_target_mae(-1.0, "oner", 10, 10, 100)

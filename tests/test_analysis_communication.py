"""The closed-form communication model vs the protocol's measured bytes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.communication import (
    expected_bytes_multir_ds,
    expected_bytes_multir_ss,
    expected_bytes_naive,
    expected_bytes_oner,
    expected_noisy_list_size,
)
from repro.estimators.registry import get_estimator
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.privacy.mechanisms import flip_probability
from repro.privacy.rng import spawn_rngs
from repro.protocol.session import ExecutionMode

EPSILON = 2.0
TRIALS = 400


@pytest.fixture(scope="module")
def graph():
    return random_bipartite(120, 90, 1400, rng=17)


def _mean_comm(graph, name, mode, trials=TRIALS, **kwargs):
    estimator = get_estimator(name, **kwargs)
    rngs = spawn_rngs(55, trials)
    return float(
        np.mean(
            [
                estimator.estimate(
                    graph, Layer.UPPER, 2, 9, EPSILON, rng=rngs[t], mode=mode
                ).communication_bytes
                for t in range(trials)
            ]
        )
    )


class TestListSizeModel:
    def test_formula(self):
        p = flip_probability(2.0)
        assert expected_noisy_list_size(2.0, 10, 100) == pytest.approx(
            10 * (1 - p) + 90 * p
        )

    def test_large_epsilon_returns_true_degree(self):
        assert expected_noisy_list_size(30.0, 17, 1000) == pytest.approx(17, abs=0.01)

    def test_small_epsilon_approaches_half_domain(self):
        assert expected_noisy_list_size(1e-6, 0, 1000) == pytest.approx(500, abs=1)


class TestAlgorithms:
    @pytest.mark.parametrize(
        "mode", [ExecutionMode.MATERIALIZE, ExecutionMode.SKETCH]
    )
    def test_naive_measured_matches_model(self, graph, mode):
        du = graph.degree(Layer.UPPER, 2)
        dw = graph.degree(Layer.UPPER, 9)
        expected = expected_bytes_naive(EPSILON, du, dw, graph.num_lower)
        measured = _mean_comm(graph, "naive", mode)
        assert measured == pytest.approx(expected, rel=0.05)

    def test_oner_equals_naive_model(self):
        assert expected_bytes_oner(2.0, 5, 9, 400) == expected_bytes_naive(
            2.0, 5, 9, 400
        )

    def test_multir_ss_measured_matches_model(self, graph):
        du = graph.degree(Layer.UPPER, 2)
        dw = graph.degree(Layer.UPPER, 9)
        expected = expected_bytes_multir_ss(
            EPSILON / 2, du, dw, graph.num_lower
        )
        measured = _mean_comm(graph, "multir-ss", ExecutionMode.SKETCH)
        assert measured == pytest.approx(expected, rel=0.05)

    def test_multir_ds_basic_measured_matches_model(self, graph):
        du = graph.degree(Layer.UPPER, 2)
        dw = graph.degree(Layer.UPPER, 9)
        expected = expected_bytes_multir_ds(
            EPSILON / 2, du, dw, graph.num_lower, 0
        ) - 2 * 8  # DS-Basic has no degree round and no eps0 reports
        # expected_bytes_multir_ds includes 2 scalars; DS-Basic also
        # releases 2 scalars, so only the degree-report term differs.
        expected += 2 * 8
        measured = _mean_comm(graph, "multir-ds-basic", ExecutionMode.SKETCH)
        assert measured == pytest.approx(expected, rel=0.05)

    def test_model_orderings(self):
        """The Fig. 10 ordering falls straight out of the model."""
        du, dw, n, layer = 30, 50, 5000, 4000
        naive = expected_bytes_naive(2.0, du, dw, n)
        ss = expected_bytes_multir_ss(1.0, du, dw, n)
        ds = expected_bytes_multir_ds(1.0, du, dw, n, layer)
        assert naive < ss < ds

    def test_model_decreasing_in_epsilon(self):
        costs = [expected_bytes_naive(e, 10, 10, 10_000) for e in (1, 2, 3)]
        assert costs == sorted(costs, reverse=True)

"""End-to-end epoch accounting: replay is free, rotation recharges.

The acceptance contract of the serving layer: replaying a workload twice
within one epoch costs exactly the one-shot batch spend (every repeat is
a cache hit), while replaying it across an epoch boundary doubles the
per-vertex spend — and the served estimates stay unbiased (distributional
guarantees live in ``test_serving_statistics.py``; here the replay is
additionally checked to be bit-identical, which preserves whatever law
the first pass drew from).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.engine.core import BatchQueryEngine
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.graph.sampling import sample_query_pairs
from repro.protocol.session import ExecutionMode
from repro.serving import QueryServer

MODES = (ExecutionMode.MATERIALIZE, ExecutionMode.SKETCH)
EPSILON = 1.5


@pytest.fixture(scope="module")
def workload():
    graph = random_bipartite(80, 60, 720, rng=13)
    pairs = sample_query_pairs(graph, Layer.UPPER, 25, rng=3)
    return graph, pairs


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_replay_free_within_epoch_doubles_across_boundary(workload, mode):
    graph, pairs = workload

    # Reference: the one-shot engine batch charges every distinct vertex
    # exactly epsilon (parallel composition across the workload).
    reference = BatchQueryEngine(mode=mode).estimate_pairs(
        graph, Layer.UPPER, pairs, EPSILON, rng=1
    )
    assert reference.max_epsilon_spent == pytest.approx(EPSILON)

    async def run():
        async with QueryServer(
            graph, Layer.UPPER, EPSILON, mode=mode, rng=5
        ) as server:
            first = await asyncio.gather(*(server.query_pair(p) for p in pairs))
            spend_first = server.accountant.max_lifetime_spent()
            replay = await asyncio.gather(*(server.query_pair(p) for p in pairs))
            spend_replay = server.accountant.max_lifetime_spent()
            server.rotate_epoch()
            rotated = await asyncio.gather(*(server.query_pair(p) for p in pairs))
            spend_rotated = server.accountant.max_lifetime_spent()
            return (
                server, first, replay, rotated,
                spend_first, spend_replay, spend_rotated,
            )

    (
        server, first, replay, rotated,
        spend_first, spend_replay, spend_rotated,
    ) = asyncio.run(run())

    # Within one epoch: total spend equals the one-shot batch spend.
    assert spend_first == pytest.approx(reference.max_epsilon_spent)
    assert spend_replay == pytest.approx(spend_first), "cache hits must be free"
    # Across the epoch boundary: the honest per-vertex total doubles.
    assert spend_rotated == pytest.approx(2.0 * EPSILON)
    assert server.accountant.epoch_peaks() == [pytest.approx(EPSILON)]
    assert server.accountant.max_epoch_spent() == pytest.approx(EPSILON)
    # The ledger's group view stays at one epsilon-round per epoch party.
    assert server.ledger.max_spent() == pytest.approx(EPSILON)

    # Replayed estimates are the identical draws (hence identically
    # distributed — unbiasedness of the first pass carries over verbatim).
    first_values = np.array([e.value for e in first])
    np.testing.assert_array_equal(
        first_values, np.array([e.value for e in replay])
    )
    assert all(estimate.cache_hit for estimate in replay)
    # A fresh epoch draws fresh views.
    assert not np.array_equal(
        first_values, np.array([e.value for e in rotated])
    )
    assert all(estimate.epoch == 1 for estimate in rotated)


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_replay_uploads_no_new_bytes(workload, mode):
    graph, pairs = workload

    async def run():
        async with QueryServer(
            graph, Layer.UPPER, EPSILON, mode=mode, rng=21
        ) as server:
            await asyncio.gather(*(server.query_pair(p) for p in pairs))
            uploaded = server.comm.total_bytes()
            await asyncio.gather(*(server.query_pair(p) for p in pairs))
            return uploaded, server.comm.total_bytes()

    uploaded_once, uploaded_twice = asyncio.run(run())
    assert uploaded_once > 0
    assert uploaded_twice == uploaded_once


def test_materialize_overlap_charges_only_new_vertices(workload):
    """New pair (a, c) after (a, b): a's cached list is reused for free;
    only c is charged. Sketch mode recharges honestly instead."""
    graph, _ = workload

    async def run(mode):
        async with QueryServer(
            graph, Layer.UPPER, EPSILON, mode=mode, rng=31
        ) as server:
            await server.query(0, 1)
            await server.query(0, 2)
            accountant = server.accountant
            return {
                v: accountant.epoch_spent(Layer.UPPER, v) for v in (0, 1, 2)
            }

    spends = asyncio.run(run(ExecutionMode.MATERIALIZE))
    assert spends == {
        0: pytest.approx(EPSILON),
        1: pytest.approx(EPSILON),
        2: pytest.approx(EPSILON),
    }

    sketch_spends = asyncio.run(run(ExecutionMode.SKETCH))
    # Without a stored list there is nothing to reuse: the new pair's
    # fresh marginal draw is a fresh release of vertex 0.
    assert sketch_spends[0] == pytest.approx(2.0 * EPSILON)
    assert sketch_spends[1] == pytest.approx(EPSILON)
    assert sketch_spends[2] == pytest.approx(EPSILON)


def test_auto_epoch_rotation_by_ticks(workload):
    graph, pairs = workload

    async def run():
        async with QueryServer(
            graph, Layer.UPPER, EPSILON,
            mode=ExecutionMode.MATERIALIZE, epoch_ticks=1, rng=17,
        ) as server:
            first = await server.query_pair(pairs[0])
            second = await server.query_pair(pairs[0])
            return server, first, second

    server, first, second = asyncio.run(run())
    assert first.epoch == 0
    assert second.epoch == 1
    assert not second.cache_hit  # the rotation dropped the views
    assert server.accountant.max_lifetime_spent() == pytest.approx(2.0 * EPSILON)

"""Loopback-cluster integration: real socket workers on 127.0.0.1.

The distributed acceptance (``docs/distributed-guide.md``): a
:class:`SocketTransport` speaking to ``python -m repro.engine.worker``
processes over real TCP sockets produces output byte-identical to the
inline and fork substrates for the same ``(seed, epsilon, epoch)`` —
including while a chaos plan kills a worker mid-draw, because the keyed
draw makes re-dispatch to the survivors invisible in the bits. Workers
are genuine subprocesses launched through the module entrypoint and
discovered by parsing the ``LISTENING host:port`` announcement line.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.engine.core import BatchQueryEngine
from repro.engine.faults import FAULT_PLAN_ENV, FaultPlan
from repro.engine.planner import plan_shards
from repro.engine.sharded import ShardedRunner
from repro.engine.transport import (
    ForkTransport,
    InlineTransport,
    SocketTransport,
    fork_available,
)
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.graph.sampling import sample_query_pairs

EPS = 2.0
ENTROPY = 424_242
SRC = Path(__file__).resolve().parents[1] / "src"


def launch_worker(extra_env: dict | None = None):
    """Start one worker subprocess; return (process, "host:port")."""
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(FAULT_PLAN_ENV, None)
    if extra_env:
        env.update(extra_env)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.engine.worker",
            "--listen",
            "127.0.0.1:0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("LISTENING "):
        proc.kill()
        raise RuntimeError(f"worker never announced itself: {line!r}")
    return proc, line.split(" ", 1)[1]


def stop_worker(proc) -> None:
    proc.terminate()
    try:
        proc.wait(timeout=5)
    except subprocess.TimeoutExpired:  # pragma: no cover - wedged worker
        proc.kill()
        proc.wait(timeout=5)


@pytest.fixture(scope="module")
def cluster():
    """Two healthy loopback workers, shared by the whole module."""
    workers = [launch_worker() for _ in range(2)]
    yield [addr for _, addr in workers]
    for proc, _ in workers:
        stop_worker(proc)


@pytest.fixture(scope="module")
def graph():
    return random_bipartite(70, 50, 520, rng=41)


@pytest.fixture(scope="module")
def plan(graph):
    return plan_shards(
        graph, Layer.UPPER, np.arange(70, dtype=np.int64), EPS, shards=3
    )


def draw_with(graph, plan, transport):
    with ShardedRunner(graph, Layer.UPPER, transport=transport) as runner:
        return runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)


# ----------------------------------------------------------------------
# Byte-identity across every substrate
# ----------------------------------------------------------------------
class TestByteIdentity:
    def test_draw_matches_inline_and_fork(self, graph, plan, cluster):
        ref = draw_with(graph, plan, InlineTransport())
        socketed = draw_with(graph, plan, SocketTransport(cluster))
        np.testing.assert_array_equal(ref.indptr, socketed.indptr)
        np.testing.assert_array_equal(ref.columns, socketed.columns)
        if fork_available():
            forked = draw_with(graph, plan, ForkTransport(max_workers=2))
            np.testing.assert_array_equal(ref.indptr, forked.indptr)
            np.testing.assert_array_equal(ref.columns, forked.columns)

    def test_run_workload_matches_and_reduces_in_worker(
        self, graph, plan, cluster
    ):
        """Same n1/sizes on every substrate — and the socket path reduces
        diagonal blocks in the workers, so fragments never travel."""
        offsets = plan.offsets
        ia, ib = [], []
        for s in range(plan.num_shards):
            lo, hi = int(offsets[s]), int(offsets[s + 1])
            for a in range(lo, min(lo + 4, hi - 1)):
                ia.append(a)
                ib.append(a + 1)
        ia = np.array(ia, dtype=np.int64)
        ib = np.array(ib, dtype=np.int64)
        kwargs = dict(
            entropy=ENTROPY, epoch=0, ia=ia, ib=ib, domain=graph.num_lower
        )
        draws = {}
        transports = {
            "inline": InlineTransport(),
            "socket": SocketTransport(cluster),
        }
        if fork_available():
            transports["fork"] = ForkTransport(max_workers=2)
        for name, transport in transports.items():
            with ShardedRunner(
                graph, Layer.UPPER, transport=transport
            ) as runner:
                draws[name] = runner.run_workload(plan, EPS, **kwargs)
        for name, draw in draws.items():
            np.testing.assert_array_equal(draws["inline"].n1, draw.n1)
            np.testing.assert_array_equal(draws["inline"].sizes, draw.sizes)
        detail = draws["socket"].transport
        assert detail["name"] == "socket"
        # Every pair is diagonal, so every shard reduced locally: no
        # fragment crossed the wire and the ledger shows the saving.
        assert detail["reduced_shards"] == plan.num_shards
        assert detail["fragment_shards"] == 0
        assert detail["reduced_pairs"] == ia.size
        assert detail["bytes_saved"] > 0
        assert detail["bytes_to_parent"] < draws["socket"].sizes.sum() * 8

    def test_cross_shard_pairs_ship_fragments(self, graph, plan, cluster):
        """A pair spanning two shards forces both fragments to the
        parent, whose block reduction must still match inline."""
        ia = np.array([0, 1], dtype=np.int64)
        ib = np.array([int(plan.offsets[1]) + 1, 2], dtype=np.int64)
        kwargs = dict(
            entropy=ENTROPY, epoch=1, ia=ia, ib=ib, domain=graph.num_lower
        )
        with ShardedRunner(
            graph, Layer.UPPER, transport=InlineTransport()
        ) as runner:
            ref = runner.run_workload(plan, EPS, **kwargs)
        with ShardedRunner(
            graph, Layer.UPPER, transport=SocketTransport(cluster)
        ) as runner:
            socketed = runner.run_workload(plan, EPS, **kwargs)
        np.testing.assert_array_equal(ref.n1, socketed.n1)
        assert socketed.transport["fragment_shards"] >= 2


# ----------------------------------------------------------------------
# Chaos: a worker dying mid-draw is invisible in the bits
# ----------------------------------------------------------------------
class TestChaos:
    def test_kill_mid_draw_redispatches_byte_identically(self, graph, plan):
        """One worker carries a kill plan for its first dispatch of shard
        0: executing it takes the whole process down mid-draw. The driver
        must mark it dead, re-dispatch its ranges to the survivor, and
        return bytes identical to the fault-free inline pass."""
        chaos_env = {
            FAULT_PLAN_ENV: FaultPlan.kill_shards([0]).to_json()
        }
        chaos_proc, chaos_addr = launch_worker(chaos_env)
        healthy_proc, healthy_addr = launch_worker()
        try:
            ref = draw_with(graph, plan, InlineTransport())
            transport = SocketTransport([chaos_addr, healthy_addr])
            with ShardedRunner(
                graph, Layer.UPPER, transport=transport
            ) as runner:
                draw = runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
                totals = dict(runner.fault_totals)
            np.testing.assert_array_equal(ref.indptr, draw.indptr)
            np.testing.assert_array_equal(ref.columns, draw.columns)
            # The substrate death was seen, retried, and attributed.
            assert draw.faults["worker_deaths"] >= 1
            assert draw.faults["retries"] >= 1
            assert totals["socket:worker_deaths"] >= 1
            assert not draw.faults["degraded_ranges"]
            # The dead worker left the live list; the survivor took over.
            described = {
                w["address"]: w for w in transport.registry.describe()
            }
            assert described[chaos_addr]["alive"] is False
            assert described[healthy_addr]["alive"] is True
            # Re-dispatch is visible in per-shard provenance.
            assert max(rec["attempts"] for rec in draw.shards) >= 2
        finally:
            stop_worker(chaos_proc)
            stop_worker(healthy_proc)

    def test_poisoned_payload_detected_and_redrawn(self, graph, plan):
        """A worker corrupting its fragment after the checksum was taken
        must be caught by wire-level verification and re-dispatched."""
        chaos_env = {
            FAULT_PLAN_ENV: FaultPlan.poison_shards([1]).to_json()
        }
        chaos_proc, chaos_addr = launch_worker(chaos_env)
        try:
            ref = draw_with(graph, plan, InlineTransport())
            # Shard 1 round-robins to handle index 1 of two workers, so
            # the poisoner must sit second in the registry.
            _, clean_addr = launch_worker()
            transport = SocketTransport([clean_addr, chaos_addr])
            with ShardedRunner(
                graph, Layer.UPPER, transport=transport
            ) as runner:
                draw = runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
            np.testing.assert_array_equal(ref.indptr, draw.indptr)
            np.testing.assert_array_equal(ref.columns, draw.columns)
            assert draw.faults["payload_errors"] >= 1
        finally:
            stop_worker(chaos_proc)


# ----------------------------------------------------------------------
# Liveness, heartbeats, and graph reinstall
# ----------------------------------------------------------------------
class TestCluster:
    def test_ping_marks_a_killed_worker_dead(self, graph):
        proc_a, addr_a = launch_worker()
        proc_b, addr_b = launch_worker()
        transport = SocketTransport([addr_a, addr_b])
        try:
            transport.bind(graph, Layer.UPPER)
            assert transport.ping() == 2
            stop_worker(proc_b)
            assert transport.ping() == 1
            live = transport.registry.live()
            assert [h.address for h in live] == [addr_a]
        finally:
            transport.close()
            stop_worker(proc_a)

    def test_rebind_reinstalls_the_new_graph(self, graph, plan, cluster):
        """A digest change (graph swap) propagates lazily: workers
        install the new snapshot on their next spec and serve its keyed
        draws byte-identically."""
        other = random_bipartite(40, 30, 260, rng=7)
        other_plan = plan_shards(
            other, Layer.UPPER, np.arange(40, dtype=np.int64), EPS, shards=2
        )
        transport = SocketTransport(cluster)
        with ShardedRunner(
            graph, Layer.UPPER, transport=transport
        ) as runner:
            first = runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
            runner.rebind(other)
            second = runner.draw(other_plan, EPS, entropy=ENTROPY, epoch=0)
        ref_first = draw_with(graph, plan, InlineTransport())
        with ShardedRunner(
            other, Layer.UPPER, transport=InlineTransport()
        ) as runner:
            ref_second = runner.draw(other_plan, EPS, entropy=ENTROPY, epoch=0)
        np.testing.assert_array_equal(ref_first.columns, first.columns)
        np.testing.assert_array_equal(ref_second.columns, second.columns)

    def test_rebind_with_delta_pushes_mutate_not_graph(self, graph, cluster):
        """A rebind carrying the rotation's delta log resyncs installed
        workers with MUTATE frames — no second GRAPH ship — and the
        draws on the mutated snapshot stay byte-identical to inline."""
        from repro.graph import DeltaLog

        transport = SocketTransport(cluster)
        with ShardedRunner(
            graph, Layer.UPPER, max_workers=2, transport=transport
        ) as runner:
            first_plan = plan_shards(
                graph, Layer.UPPER, np.arange(70, dtype=np.int64), EPS,
                shards=2,
            )
            runner.draw(first_plan, EPS, entropy=ENTROPY, epoch=0)
            installs = transport.describe()["ingest"]["graph_installs"]
            log = DeltaLog(graph)
            log.delete(*(int(x) for x in graph.edges[0]))
            log.insert(
                *next(
                    (u, l)
                    for u in range(70)
                    for l in range(50)
                    if not graph.has_edge(u, l)
                )
            )
            mutated = log.apply()
            runner.rebind(mutated, delta=log.compact())
            second_plan = plan_shards(
                mutated, Layer.UPPER, np.arange(70, dtype=np.int64), EPS,
                shards=2,
            )
            second = runner.draw(second_plan, EPS, entropy=ENTROPY, epoch=1)
            ingest = transport.describe()["ingest"]
        assert ingest["delta_pushes"] >= 1
        assert ingest["delta_saved_bytes"] > 0
        assert ingest["graph_installs"] == installs  # nobody re-shipped
        with ShardedRunner(
            mutated, Layer.UPPER, transport=InlineTransport()
        ) as runner:
            ref = runner.draw(second_plan, EPS, entropy=ENTROPY, epoch=1)
        np.testing.assert_array_equal(ref.indptr, second.indptr)
        np.testing.assert_array_equal(ref.columns, second.columns)

    def test_repeat_draws_reuse_the_installed_graph(self, graph, plan, cluster):
        """The GRAPH frame ships once per worker per digest, not per
        draw: repeated draws on one runner keep the same bytes."""
        transport = SocketTransport(cluster)
        with ShardedRunner(
            graph, Layer.UPPER, transport=transport
        ) as runner:
            a = runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
            b = runner.draw(plan, EPS, entropy=ENTROPY, epoch=0)
        np.testing.assert_array_equal(a.indptr, b.indptr)
        np.testing.assert_array_equal(a.columns, b.columns)


# ----------------------------------------------------------------------
# Engine-level integration: serve real estimates over the cluster
# ----------------------------------------------------------------------
class TestEngineOverSockets:
    def test_estimates_match_local_sharded_engine(self, graph, cluster):
        pairs = sample_query_pairs(graph, Layer.UPPER, 60, rng=3)
        # Shard count never changes the keyed draw, so a 2-range local
        # engine is the byte-exact reference for the 2-worker cluster.
        with BatchQueryEngine(shards=2) as reference:
            plain = reference.estimate_pairs(
                graph, Layer.UPPER, pairs, epsilon=EPS, rng=9
            )
        with BatchQueryEngine(
            shard_transport=SocketTransport(cluster)
        ) as engine:
            socketed = engine.estimate_pairs(
                graph, Layer.UPPER, pairs, epsilon=EPS, rng=9
            )
        np.testing.assert_array_equal(plain.values, socketed.values)
        detail = socketed.details["shards"]["transport"]
        assert detail["name"] == "socket"
        assert socketed.details["shards"]["count"] >= 2

    def test_transport_by_name_with_worker_addresses(self, graph, cluster):
        pairs = sample_query_pairs(graph, Layer.UPPER, 30, rng=4)
        with BatchQueryEngine(
            shard_transport="socket", shard_workers=cluster
        ) as engine:
            result = engine.estimate_pairs(
                graph, Layer.UPPER, pairs, epsilon=EPS, rng=2
            )
        with BatchQueryEngine(shards=2) as reference:
            ref = reference.estimate_pairs(
                graph, Layer.UPPER, pairs, epsilon=EPS, rng=2
            )
        np.testing.assert_array_equal(ref.values, result.values)

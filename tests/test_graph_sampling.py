"""Tests for query-pair and subgraph sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.generators import chung_lu_bipartite, power_law_degrees, random_bipartite
from repro.graph.sampling import (
    QueryPair,
    sample_imbalanced_pairs,
    sample_query_pairs,
    sample_vertex_fraction,
)


@pytest.fixture()
def skewed_graph() -> BipartiteGraph:
    w_u = power_law_degrees(400, exponent=2.0, d_min=1, d_max=200, rng=1).astype(float)
    w_l = np.ones(300)
    return chung_lu_bipartite(w_u, w_l, num_edges=2500, rng=2)


class TestQueryPair:
    def test_fields(self):
        pair = QueryPair(Layer.UPPER, 3, 9)
        assert pair.layer is Layer.UPPER
        assert pair.a == 3
        assert pair.b == 9

    def test_is_tuple(self):
        assert QueryPair(Layer.LOWER, 1, 2) == (Layer.LOWER, 1, 2)

    def test_identical_vertices_rejected(self):
        with pytest.raises(GraphError):
            QueryPair(Layer.UPPER, 4, 4)


class TestSampleQueryPairs:
    def test_count_and_distinctness(self, small_graph):
        pairs = sample_query_pairs(small_graph, Layer.UPPER, 25, rng=3)
        assert len(pairs) == 25
        for pair in pairs:
            assert pair.a != pair.b
            assert 0 <= pair.a < small_graph.num_upper

    def test_zero_count(self, small_graph):
        assert sample_query_pairs(small_graph, Layer.UPPER, 0, rng=3) == []

    def test_min_degree_respected(self, skewed_graph):
        pairs = sample_query_pairs(skewed_graph, Layer.UPPER, 40, rng=4, min_degree=3)
        degs = skewed_graph.degrees(Layer.UPPER)
        for pair in pairs:
            assert degs[pair.a] >= 3
            assert degs[pair.b] >= 3

    def test_determinism(self, small_graph):
        a = sample_query_pairs(small_graph, Layer.UPPER, 10, rng=5)
        b = sample_query_pairs(small_graph, Layer.UPPER, 10, rng=5)
        assert a == b

    def test_too_few_eligible_raises(self):
        g = BipartiteGraph(3, 3, [(0, 0)])
        with pytest.raises(GraphError):
            sample_query_pairs(g, Layer.UPPER, 1, rng=1, min_degree=1)


class TestSampleImbalancedPairs:
    def test_constraint_holds(self, skewed_graph):
        degs = skewed_graph.degrees(Layer.UPPER)
        for kappa in (1.0, 5.0, 20.0):
            pairs = sample_imbalanced_pairs(
                skewed_graph, Layer.UPPER, 15, kappa, rng=6
            )
            assert len(pairs) == 15
            for pair in pairs:
                hi = max(degs[pair.a], degs[pair.b])
                lo = min(degs[pair.a], degs[pair.b])
                assert hi > kappa * lo

    def test_kappa_below_one_rejected(self, skewed_graph):
        with pytest.raises(GraphError):
            sample_imbalanced_pairs(skewed_graph, Layer.UPPER, 5, 0.5, rng=1)

    def test_impossible_kappa_raises(self):
        g = random_bipartite(20, 20, 80, rng=1)  # near-uniform degrees
        with pytest.raises(GraphError):
            sample_imbalanced_pairs(g, Layer.UPPER, 5, 1e6, rng=2, max_attempts=500)

    def test_zero_count(self, skewed_graph):
        assert sample_imbalanced_pairs(skewed_graph, Layer.UPPER, 0, 10, rng=1) == []

    def test_fallback_produces_unbiased_order(self, skewed_graph):
        # With a huge kappa the stratified fallback is exercised; neither
        # slot should systematically hold the low-degree endpoint.
        degs = skewed_graph.degrees(Layer.UPPER)
        kappa = 50.0
        pairs = sample_imbalanced_pairs(
            skewed_graph, Layer.UPPER, 40, kappa, rng=8, max_attempts=10
        )
        first_is_low = sum(1 for p in pairs if degs[p.a] < degs[p.b])
        assert 5 <= first_is_low <= 35


class TestSampleVertexFraction:
    def test_full_fraction_returns_same_graph(self, small_graph):
        assert sample_vertex_fraction(small_graph, 1.0, rng=1) is small_graph

    def test_sizes_scale(self, medium_graph):
        sub = sample_vertex_fraction(medium_graph, 0.5, rng=2)
        assert sub.num_upper == round(medium_graph.num_upper * 0.5)
        assert sub.num_lower == round(medium_graph.num_lower * 0.5)
        assert sub.num_edges < medium_graph.num_edges

    def test_edges_scale_quadratically(self, rng):
        g = random_bipartite(400, 400, 20000, rng=rng)
        sub = sample_vertex_fraction(g, 0.5, rng=rng)
        # E[|E_sub|] = 0.25 * |E|; allow generous sampling slack.
        assert 0.15 * g.num_edges < sub.num_edges < 0.35 * g.num_edges

    def test_invalid_fraction(self, small_graph):
        with pytest.raises(GraphError):
            sample_vertex_fraction(small_graph, 0.0, rng=1)
        with pytest.raises(GraphError):
            sample_vertex_fraction(small_graph, 1.5, rng=1)

    def test_keeps_at_least_one_vertex(self, small_graph):
        sub = sample_vertex_fraction(small_graph, 0.001, rng=3)
        assert sub.num_upper >= 1
        assert sub.num_lower >= 1

    def test_determinism(self, small_graph):
        a = sample_vertex_fraction(small_graph, 0.4, rng=9)
        b = sample_vertex_fraction(small_graph, 0.4, rng=9)
        assert a == b

"""Metamorphic properties of the streaming delta log.

Core relation: mutations that cancel within one epoch must be
*unobservable* — an insert-then-delete of the same edge (or any script
followed by its exact inverse) leaves the dirty set empty, the
accountant's charges untouched, and the next rotation's byte stream
identical to a twin server that never mutated anything.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DeltaLog, Layer, random_bipartite
from repro.privacy.mechanisms import LaplaceMechanism
from repro.privacy.sensitivity import degree_sensitivity
from repro.serving import NoisyViewCache

EPSILON = 2.0
N_UPPER, N_LOWER = 24, 20


def _graph(seed=13):
    return random_bipartite(N_UPPER, N_LOWER, 140, rng=seed)


def _twin_caches(graph, seed=33, **kwargs):
    """Two caches with identical entropy: byte-level comparable."""
    a = NoisyViewCache(
        graph, Layer.UPPER, EPSILON, max_entries=10**6,
        rng=np.random.default_rng(seed), **kwargs,
    )
    b = NoisyViewCache(
        graph, Layer.UPPER, EPSILON, max_entries=10**6,
        rng=np.random.default_rng(seed), **kwargs,
    )
    assert a._entropy == b._entropy
    return a, b


class TestInsertThenDelete:
    def test_cancelled_edge_leaves_no_trace(self):
        """Insert-then-delete of one absent edge within one epoch: empty
        dirty set, identical accountant charges, and the next rotation's
        draws byte-identical to never having touched the edge."""
        graph = _graph()
        absent = next(
            (u, l)
            for u in range(N_UPPER)
            for l in range(N_LOWER)
            if not graph.has_edge(u, l)
        )
        touched, untouched = _twin_caches(graph)
        verts = np.arange(N_UPPER, dtype=np.int64)
        for cache in (touched, untouched):
            cache.accountant.charge_vertices(
                Layer.UPPER, verts, EPSILON, "randomized-response", "rr"
            )
            cache.materialize_fresh(verts)

        touched.mutate(inserts=[absent])
        touched.mutate(deletes=[absent])
        assert touched.pending_dirty().size == 0
        assert touched.pending_delta.is_net_empty
        # The cancelled ops charged nothing: per-epoch spend identical.
        assert (
            touched.accountant.epoch_spent(Layer.UPPER, absent[0])
            == untouched.accountant.epoch_spent(Layer.UPPER, absent[0])
        )

        touched.rotate()
        untouched.rotate()
        assert not touched.last_rotation["incremental"]
        assert touched.graph is graph  # net-empty delta: no snapshot swap
        assert touched.epoch == untouched.epoch
        assert touched.draw_epoch == untouched.draw_epoch
        np.testing.assert_array_equal(touched._versions, untouched._versions)

        touched.materialize_fresh(verts)
        untouched.materialize_fresh(verts)
        for v in verts:
            np.testing.assert_array_equal(
                touched.view(v), untouched.view(v)
            )

    def test_delete_then_insert_of_existing_edge_cancels(self):
        graph = _graph(14)
        edge = tuple(int(x) for x in graph.edges[0])
        cache, twin = _twin_caches(graph, seed=34)
        cache.mutate(deletes=[edge])
        cache.mutate(inserts=[edge])
        assert cache.pending_delta.is_net_empty
        assert cache.pending_dirty().size == 0
        cache.rotate()
        twin.rotate()
        verts = np.arange(N_UPPER, dtype=np.int64)
        cache.materialize_fresh(verts)
        twin.materialize_fresh(verts)
        for v in verts:
            np.testing.assert_array_equal(cache.view(v), twin.view(v))


class TestScriptInverse:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_script_plus_inverse_is_identity(self, seed):
        """Any applicable op script followed by its inverse (in reverse
        order) nets to nothing: dirty set empty, apply() returns the base
        snapshot itself."""
        rng = np.random.default_rng(seed)
        graph = _graph(int(rng.integers(100)))
        log = DeltaLog(graph)
        applied: list[tuple[bool, int, int]] = []
        membership = {(int(u), int(l)) for u, l in graph.edges}
        for _ in range(int(rng.integers(1, 12))):
            u = int(rng.integers(N_UPPER))
            l = int(rng.integers(N_LOWER))
            if (u, l) in membership:
                log.delete(u, l)
                membership.discard((u, l))
                applied.append((False, u, l))
            else:
                log.insert(u, l)
                membership.add((u, l))
                applied.append((True, u, l))
        for was_insert, u, l in reversed(applied):
            if was_insert:
                log.delete(u, l)
            else:
                log.insert(u, l)
        assert log.is_net_empty
        assert log.dirty_vertices(Layer.UPPER).size == 0
        assert log.dirty_vertices(Layer.LOWER).size == 0
        assert log.apply() is graph

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_cancelled_round_draws_like_untouched_twin(self, seed):
        """End to end on the cache: a cancelled script leaves the next
        rotation's materialize, sketch-view and degree draws byte-identical
        to a twin that never mutated."""
        rng = np.random.default_rng(seed)
        graph = _graph(int(rng.integers(100)))
        touched, untouched = _twin_caches(graph, seed=35)
        membership = {(int(u), int(l)) for u, l in graph.edges}
        script: list[tuple[bool, int, int]] = []
        for _ in range(int(rng.integers(1, 8))):
            u = int(rng.integers(N_UPPER))
            l = int(rng.integers(N_LOWER))
            present = (u, l) in membership
            if present:
                touched.mutate(deletes=[(u, l)])
                membership.discard((u, l))
            else:
                touched.mutate(inserts=[(u, l)])
                membership.add((u, l))
            script.append((not present, u, l))
        for was_insert, u, l in reversed(script):
            if was_insert:
                touched.mutate(deletes=[(u, l)])
            else:
                touched.mutate(inserts=[(u, l)])
        assert touched.pending_dirty().size == 0

        touched.rotate()
        untouched.rotate()
        verts = np.arange(N_UPPER, dtype=np.int64)
        mech = LaplaceMechanism(1.0, degree_sensitivity())
        touched.materialize_fresh(verts)
        untouched.materialize_fresh(verts)
        td = touched.degree_fresh(verts, mech)
        ud = untouched.degree_fresh(verts, mech)
        np.testing.assert_array_equal(td, ud)
        for v in verts:
            np.testing.assert_array_equal(touched.view(v), untouched.view(v))

"""Cache eviction under a byte/entry budget: bounded memory, free redraws.

The eviction contract: an LRU budget keeps resident cache memory bounded
while the *accounting* behaves as if nothing was ever evicted — an
evicted view's next touch reconstructs the bit-identical report from its
deterministic per-(epoch, key) stream, charges the
:class:`EpochAccountant` exactly once per vertex per epoch in total, and
never trips the enforced epoch allowance. Rotation, not eviction, is the
only event that re-randomizes and recharges.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from scipy import stats as sps

from repro.engine.core import BatchQueryEngine
from repro.engine.sharded import ShardedRunner
from repro.errors import ProtocolError
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.graph.sampling import QueryPair, sample_query_pairs
from repro.privacy.mechanisms import LaplaceMechanism
from repro.privacy.sensitivity import degree_sensitivity
from repro.protocol.session import ExecutionMode
from repro.serving import NoisyViewCache, QueryServer

EPSILON = 2.0


@pytest.fixture(scope="module")
def graph():
    return random_bipartite(80, 60, 720, rng=13)


def run_server(graph, script, **kwargs):
    async def main():
        async with QueryServer(graph, Layer.UPPER, EPSILON, rng=11, **kwargs) as s:
            return await script(s)

    return asyncio.run(main())


class TestEvictionAccounting:
    def test_evicted_view_next_touch_charges_exactly_once(self, graph):
        """The satellite acceptance: cycle a star workload through a
        4-entry cache so every view is evicted repeatedly; each vertex's
        epoch spend stays exactly one epsilon (plus nothing for any of
        the redraws), so the enforced auto allowance is never exceeded."""

        async def script(server):
            first = [await server.query(0, i) for i in range(1, 10)]
            second = [await server.query(0, i) for i in range(1, 10)]
            return first, second

        async def main():
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE, cache_entries=4, rng=11,
            ) as server:
                first, second = await script(server)
                return server, first, second

        server, first, second = asyncio.run(main())
        cache, accountant = server.cache, server.accountant
        assert cache.stats.evictions > 0, "budget never forced an eviction"
        assert cache.stats.recharges > 0, "no evicted view was ever re-touched"
        # Exactly one charge per vertex for the whole evict/redraw churn —
        # and therefore never above the enforced epsilon-per-epoch cap.
        for v in range(10):
            assert accountant.epoch_spent(Layer.UPPER, v) == pytest.approx(EPSILON)
        assert accountant.max_epoch_spent() == pytest.approx(EPSILON)
        assert accountant.epsilon_per_epoch == pytest.approx(EPSILON)
        # Redrawn views replay the original stream bit for bit.
        np.testing.assert_array_equal(
            [e.value for e in first], [e.value for e in second]
        )

    def test_entry_budget_bounds_resident_entries(self, graph):
        async def script(server):
            for i in range(1, 30):
                await server.query(0, i)
            return server.cache.entries()

        resident = run_server(
            graph, script, mode=ExecutionMode.MATERIALIZE, cache_entries=6
        )
        assert resident <= 6

    def test_byte_budget_bounds_resident_bytes(self, graph):
        budget = 4000

        async def script(server):
            peak = 0
            for i in range(1, 40):
                await server.query(0, i)
                peak = max(peak, server.cache.nbytes())
            return peak

        peak = run_server(
            graph, script, mode=ExecutionMode.MATERIALIZE, cache_bytes=budget
        )
        # Bytes are enforced at tick boundaries (the in-flight working
        # set may transiently overshoot); serial queries are 2-vertex
        # ticks, so the post-tick peak stays within budget.
        assert peak <= budget

    def test_sketch_mode_eviction_replays_pairs(self, graph):
        async def script(server):
            pairs = sample_query_pairs(graph, Layer.UPPER, 12, rng=2)
            first = [await server.query_pair(p) for p in pairs]
            spend = server.accountant.max_epoch_spent()
            second = [await server.query_pair(p) for p in pairs]
            return first, second, spend, server.accountant.max_epoch_spent()

        first, second, spend_once, spend_twice = run_server(
            graph, script, mode=ExecutionMode.SKETCH, cache_entries=3
        )
        # Replaying evicted pairs reconstructs the same draws free of
        # charge: no recharge despite only 3 resident entries.
        assert [e.value for e in first] == [e.value for e in second]
        assert spend_twice == pytest.approx(spend_once)

    def test_rotation_rerandomizes_evicted_views(self, graph):
        """Eviction must not leak draws across epochs: after rotate, the
        deterministic streams are keyed by the new epoch."""

        async def main():
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE, cache_entries=4, rng=11,
            ) as server:
                first = [await server.query(0, i) for i in range(1, 8)]
                server.rotate_epoch()
                second = [await server.query(0, i) for i in range(1, 8)]
                return server, first, second

        server, first, second = asyncio.run(main())
        assert not np.array_equal(
            [e.value for e in first], [e.value for e in second]
        )
        assert server.accountant.max_lifetime_spent() == pytest.approx(2 * EPSILON)
        assert server.accountant.max_epoch_spent() == pytest.approx(EPSILON)


class TestDegreeAccounting:
    """Noisy degrees are budgeted, evictable, and privacy-free to redraw."""

    def test_degrees_count_toward_bytes_and_entries(self, graph):
        cache = NoisyViewCache(
            graph, Layer.UPPER, EPSILON,
            mode=ExecutionMode.MATERIALIZE, max_bytes=10_000, rng=4,
        )
        mech = LaplaceMechanism(0.5, degree_sensitivity())
        before_bytes, before_entries = cache.nbytes(), cache.entries()
        cache.degree_fresh(np.arange(10, dtype=np.int64), mech)
        assert cache.entries() == before_entries + 10
        assert cache.nbytes() == before_bytes + 10 * 16

    def test_degree_entry_budget_is_enforced(self, graph):
        """The satellite bug: degree entries used to be invisible to the
        LRU budget, so a degree-serving bounded cache grew without bound."""
        cache = NoisyViewCache(
            graph, Layer.UPPER, EPSILON,
            mode=ExecutionMode.MATERIALIZE, max_entries=6, rng=4,
        )
        mech = LaplaceMechanism(0.5, degree_sensitivity())
        cache.degree_fresh(np.arange(40, dtype=np.int64), mech)
        cache.evict_to_budget()
        assert cache.entries() <= 6
        assert cache.stats.evictions >= 34

    def test_evicted_degree_reconstructs_bit_identically_and_free(self, graph):
        cache = NoisyViewCache(
            graph, Layer.UPPER, EPSILON,
            mode=ExecutionMode.MATERIALIZE, max_entries=2, rng=4,
        )
        mech = LaplaceMechanism(0.5, degree_sensitivity())
        vertices = np.arange(5, dtype=np.int64)
        first = cache.degree_fresh(vertices, mech)
        cache.evict_to_budget()
        assert cache.entries() <= 2
        evicted = [v for v in range(5) if not cache.has_degree(v)]
        assert evicted
        # All five stay charge-free: the redraw is a deterministic replay.
        assert cache.uncharged_degrees(vertices).size == 0
        recharges_before = cache.stats.recharges
        second = cache.degree_fresh(np.array(evicted, dtype=np.int64), mech)
        np.testing.assert_array_equal(second, first[evicted])
        assert cache.stats.recharges == recharges_before + len(evicted)

    def test_served_degrees_bounded_and_charged_once(self, graph):
        """End to end: a bounded degree-serving server keeps resident
        entries within budget while every vertex pays epsilon +
        degree_epsilon exactly once per epoch — eviction churn included —
        and replays identical noisy degrees."""
        degree_epsilon = 0.5

        async def main():
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE, cache_entries=4,
                degree_epsilon=degree_epsilon, rng=11,
            ) as server:
                first = [await server.query(0, i) for i in range(1, 10)]
                second = [await server.query(0, i) for i in range(1, 10)]
                return server, first, second

        server, first, second = asyncio.run(main())
        assert server.cache.entries() <= 4
        for v in range(10):
            assert server.accountant.epoch_spent(Layer.UPPER, v) == pytest.approx(
                EPSILON + degree_epsilon
            )
        # The enforced auto allowance (epsilon + degree_epsilon) held even
        # though evicted degrees were re-released repeatedly.
        assert server.accountant.epsilon_per_epoch == pytest.approx(
            EPSILON + degree_epsilon
        )
        for e1, e2 in zip(first, second):
            assert e1.value == e2.value
            assert e1.noisy_degree_a == e2.noisy_degree_a
            assert e1.noisy_degree_b == e2.noisy_degree_b

    def test_sketch_mode_degree_entries_respect_budget(self, graph):
        degree_epsilon = 0.5

        async def script(server):
            pairs = sample_query_pairs(graph, Layer.UPPER, 25, rng=6)
            for pair in pairs:
                await server.query_pair(pair)
            return server.cache.entries()

        resident = run_server(
            graph, script, mode=ExecutionMode.SKETCH, cache_entries=8,
            degree_epsilon=degree_epsilon,
        )
        assert resident <= 8


class TestRechargeCounting:
    def test_recharges_count_exactly_once_per_evicted_then_touched_entry(
        self, graph
    ):
        """`recharges` is the precise re-upload meter: one count per
        evicted entry per redraw, never for first draws."""
        cache = NoisyViewCache(
            graph, Layer.UPPER, EPSILON,
            mode=ExecutionMode.MATERIALIZE, max_entries=2, rng=9,
        )
        cache.materialize_fresh(np.array([0, 1, 2], dtype=np.int64))
        assert cache.stats.recharges == 0  # first draws are not recharges
        cache.evict_to_budget()  # LRU drops vertex 0
        assert not cache.has_view(0)
        cache.materialize_fresh(np.array([0], dtype=np.int64))
        assert cache.stats.recharges == 1
        cache.evict_to_budget()  # LRU drops vertex 1
        assert not cache.has_view(1)
        # A mixed block: one redraw (1) and one first draw (5).
        cache.materialize_fresh(np.array([1, 5], dtype=np.int64))
        assert cache.stats.recharges == 2
        assert cache.uncharged(np.array([0, 1, 2, 5])).size == 0

    def test_tick_details_report_recharges(self, graph):
        cache = NoisyViewCache(
            graph, Layer.UPPER, EPSILON,
            mode=ExecutionMode.MATERIALIZE, max_entries=2, rng=9,
        )
        engine = BatchQueryEngine(mode=ExecutionMode.MATERIALIZE)
        pair = [QueryPair(Layer.UPPER, 0, 1)]
        first = engine.estimate_pairs(graph, Layer.UPPER, pair, rng=1, cache=cache)
        assert first.details["cache"]["recharges"] == 0
        engine.estimate_pairs(
            graph, Layer.UPPER, [QueryPair(Layer.UPPER, 2, 3)], rng=1, cache=cache
        )
        again = engine.estimate_pairs(graph, Layer.UPPER, pair, rng=1, cache=cache)
        assert again.details["cache"]["recharges"] == 2
        np.testing.assert_array_equal(
            first.noisy_intersections, again.noisy_intersections
        )


class TestBoundedUnbiasedness:
    def test_bounded_and_unbounded_estimates_agree_in_distribution(self):
        """Across epochs (fresh streams each), the bounded cache's keyed
        draws and the unbounded cache's shared-rng draws must produce
        the same estimate distribution — eviction determinism must not
        bias the estimator."""
        graph = random_bipartite(30, 40, 360, rng=21)
        pair = [QueryPair(Layer.UPPER, 0, 1)]
        trials = 150

        def sample(**cache_kwargs):
            cache = NoisyViewCache(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE, rng=5, **cache_kwargs,
            )
            engine = BatchQueryEngine(mode=ExecutionMode.MATERIALIZE)
            rng = np.random.default_rng(99)
            values = []
            for _ in range(trials):
                result = engine.estimate_pairs(
                    graph, Layer.UPPER, pair, rng=rng, cache=cache
                )
                values.append(float(result.values[0]))
                cache.rotate()
            return np.asarray(values)

        bounded = sample(max_entries=1)  # every tick evicts below its pair
        unbounded = sample()
        result = sps.ks_2samp(bounded, unbounded)
        assert result.pvalue > 1e-4, (
            f"bounded vs unbounded estimate distributions differ "
            f"(p={result.pvalue:.2e})"
        )
        exact = graph.count_common_neighbors(Layer.UPPER, 0, 1)
        assert abs(bounded.mean() - exact) < 6 * bounded.std(ddof=1) / np.sqrt(trials)


class TestBoundedCacheUnit:
    def test_unbounded_cache_never_evicts(self, graph):
        cache = NoisyViewCache(graph, Layer.UPPER, EPSILON,
                               mode=ExecutionMode.MATERIALIZE)
        assert not cache.bounded
        assert cache.evict_to_budget() == 0

    def test_invalid_budgets_refused(self, graph):
        with pytest.raises(ProtocolError):
            NoisyViewCache(graph, Layer.UPPER, EPSILON, max_bytes=0)
        with pytest.raises(ProtocolError):
            NoisyViewCache(graph, Layer.UPPER, EPSILON, max_entries=-1)

    def test_bounded_draws_are_deterministic_per_epoch(self, graph):
        cache = NoisyViewCache(
            graph, Layer.UPPER, EPSILON,
            mode=ExecutionMode.MATERIALIZE, max_entries=2, rng=9,
        )
        vertices = np.array([3, 4, 5], dtype=np.int64)
        cache.materialize_fresh(vertices)
        rows = {int(v): cache.view(v).copy() for v in vertices}
        cache.evict_to_budget()
        assert cache.entries() <= 2
        evicted = [v for v in (3, 4, 5) if not cache.has_view(v)]
        assert evicted, "eviction should have dropped at least one view"
        cache.materialize_fresh(np.array(evicted, dtype=np.int64))
        for v in evicted:
            np.testing.assert_array_equal(cache.view(v), rows[v])
        # All three vertices remain charge-free for the rest of the epoch.
        assert cache.uncharged(vertices).size == 0

    def test_pinned_entries_survive_eviction(self, graph):
        cache = NoisyViewCache(
            graph, Layer.UPPER, EPSILON,
            mode=ExecutionMode.MATERIALIZE, max_entries=1, rng=9,
        )
        cache.materialize_fresh(np.array([1, 2, 3], dtype=np.int64))
        cache.evict_to_budget(pin={1, 2, 3})
        assert cache.entries() == 3  # soft cap: the pinned set stays
        cache.evict_to_budget()
        assert cache.entries() == 1

    def test_hottest_last_epoch_tracks_touches(self, graph):
        cache = NoisyViewCache(graph, Layer.UPPER, EPSILON,
                               mode=ExecutionMode.MATERIALIZE)
        cache.materialize_fresh(np.array([0, 1, 2], dtype=np.int64), rng=1)
        cache.gather_views(np.array([0, 0, 0, 1, 1, 2]))
        assert cache.hottest_last_epoch(2) == []  # nothing closed yet
        cache.rotate()
        assert cache.hottest_last_epoch(2) == [0, 1]
        assert cache.hottest_last_epoch(0) == []


class TestShardRangeEviction:
    """The satellite acceptance: a sharded bounded cache evicts whole
    shard ranges, so trimming a large over-budget working set costs one
    LRU scan per *range* instead of one per vertex."""

    def test_eviction_batches_scale_with_ranges_not_vertices(self, graph):
        with ShardedRunner(graph, Layer.UPPER, max_workers=1) as runner:
            cache = NoisyViewCache(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE,
                max_entries=4, rng=5,
                shard_runner=runner, shard_mem_bytes=4_000,
            )
            cache.materialize_fresh(np.arange(60, dtype=np.int64))
            ranges = len(cache.last_shard_draw)
            assert ranges >= 2  # the budget split the draw into ranges
            evicted = cache.evict_to_budget()
        assert evicted >= 56  # trimmed back under the 4-entry budget
        # The speed assertion: one victim-selection scan per evicted
        # range (plus at most one final check), never one per vertex.
        assert cache.stats.eviction_batches <= ranges + 1
        assert cache.stats.eviction_batches < cache.stats.evictions

    def test_unsharded_cache_still_evicts_per_vertex(self, graph):
        cache = NoisyViewCache(
            graph, Layer.UPPER, EPSILON,
            mode=ExecutionMode.MATERIALIZE, max_entries=3, rng=5,
        )
        cache.materialize_fresh(np.arange(10, dtype=np.int64))
        evicted = cache.evict_to_budget()
        assert evicted == 7
        assert cache.stats.eviction_batches == cache.stats.evictions

    def test_range_evicted_views_redraw_byte_identically(self, graph):
        """Batch eviction must not break the recharge contract: every
        vertex the range took down redraws its epoch bytes exactly."""
        with ShardedRunner(graph, Layer.UPPER, max_workers=1) as runner:
            cache = NoisyViewCache(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE,
                max_entries=4, rng=6,
                shard_runner=runner, shard_mem_bytes=4_000,
            )
            verts = np.arange(30, dtype=np.int64)
            cache.materialize_fresh(verts)
            originals = {int(v): cache.view(int(v)).copy() for v in verts}
            cache.evict_to_budget()
            gone = np.array(
                [v for v in verts if not cache.has_view(int(v))],
                dtype=np.int64,
            )
            assert gone.size > 0
            cache.materialize_fresh(gone)
            for v in gone:
                np.testing.assert_array_equal(
                    cache.view(int(v)), originals[int(v)]
                )
            assert cache.uncharged(verts).size == 0  # recharge-free


class TestWarmSetEwma:
    """The satellite acceptance: rotation warming ranks vertices by an
    exponentially weighted touch average, so a drifting hot set is
    tracked within two epochs and a one-epoch blip cannot hijack it."""

    def touch(self, cache, vertices, times):
        cache.gather_views(
            np.array(list(vertices) * times, dtype=np.int64)
        )

    def test_drifting_hot_set_tracked_within_two_epochs(self, graph):
        cache = NoisyViewCache(graph, Layer.UPPER, EPSILON,
                               mode=ExecutionMode.MATERIALIZE)
        cache.materialize_fresh(np.arange(6, dtype=np.int64), rng=2)
        # Epoch 0: {0, 1, 2} is the hot set.
        self.touch(cache, [0, 1, 2], 5)
        cache.rotate()
        assert cache.hottest_last_epoch(3) == [0, 1, 2]
        # Epoch 1: traffic drifts to {3, 4, 5} with the same intensity —
        # the new set must already outrank the decayed old one.
        cache.materialize_fresh(np.arange(6, dtype=np.int64))
        self.touch(cache, [3, 4, 5], 5)
        cache.rotate()
        assert cache.hottest_last_epoch(3) == [3, 4, 5]
        # Epoch 2: drift sustained; the old set's residual heat decays
        # below everything still being touched.
        cache.materialize_fresh(np.arange(6, dtype=np.int64))
        self.touch(cache, [3, 4, 5], 5)
        cache.rotate()
        assert set(cache.hottest_last_epoch(3)) == {3, 4, 5}

    def test_one_epoch_blip_does_not_displace_sustained_heat(self, graph):
        cache = NoisyViewCache(graph, Layer.UPPER, EPSILON,
                               mode=ExecutionMode.MATERIALIZE)
        cache.materialize_fresh(np.arange(4, dtype=np.int64), rng=3)
        for _ in range(3):  # vertex 0 is steadily hot
            self.touch(cache, [0], 4)
            cache.rotate()
            cache.materialize_fresh(np.arange(4, dtype=np.int64))
        # One anomalous epoch: vertex 1 spikes just past vertex 0.
        self.touch(cache, [0], 4)
        self.touch(cache, [1], 5)
        cache.rotate()
        cache.materialize_fresh(np.arange(4, dtype=np.int64))
        # The next ordinary epoch restores the sustained vertex on top.
        self.touch(cache, [0], 4)
        cache.rotate()
        assert cache.hottest_last_epoch(2) == [0, 1]

    def test_warm_decay_one_reduces_to_last_epoch_counts(self, graph):
        """alpha = 1 is the pre-EWMA behavior: history is forgotten."""
        cache = NoisyViewCache(graph, Layer.UPPER, EPSILON,
                               mode=ExecutionMode.MATERIALIZE, warm_decay=1.0)
        cache.materialize_fresh(np.arange(4, dtype=np.int64), rng=4)
        self.touch(cache, [0, 1], 5)
        cache.rotate()
        cache.materialize_fresh(np.arange(4, dtype=np.int64))
        self.touch(cache, [2], 1)
        cache.rotate()
        assert cache.hottest_last_epoch(4) == [2]

    def test_invalid_warm_decay_refused(self, graph):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ProtocolError, match="warm_decay"):
                NoisyViewCache(graph, Layer.UPPER, EPSILON,
                               mode=ExecutionMode.MATERIALIZE,
                               warm_decay=bad)

    def test_server_threads_warm_decay_through(self, graph):
        async def script(server):
            return server.cache.warm_decay

        decay = run_server(
            graph, script, mode=ExecutionMode.MATERIALIZE, warm_decay=0.8
        )
        assert decay == pytest.approx(0.8)

"""Tests for the extended applications: similarity kinds, butterflies,
total-budget projection, shared ingredients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications.butterfly import (
    estimate_butterflies_between,
    estimate_global_butterflies,
)
from repro.applications.ingredients import private_pair_ingredients
from repro.applications.projection import ldp_projection_with_total_budget
from repro.applications.similarity import (
    SIMILARITY_KINDS,
    estimate_similarity,
    top_k_similar,
)
from repro.errors import PrivacyError, ReproError
from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.generators import random_bipartite
from repro.graph.motifs import butterflies_between, count_butterflies
from repro.privacy.rng import spawn_rngs


@pytest.fixture()
def overlap_graph() -> BipartiteGraph:
    edges = [(0, i) for i in range(10)]
    edges += [(1, i) for i in range(2, 12)]
    edges += [(2, i) for i in range(20, 25)]
    return BipartiteGraph(3, 30, edges)


class TestIngredients:
    def test_budget_split(self, overlap_graph):
        out = private_pair_ingredients(
            overlap_graph, Layer.UPPER, 0, 1, 2.0, degree_fraction=0.3, rng=1
        )
        assert out.epsilon_degrees == pytest.approx(0.6)
        assert out.epsilon_c2 == pytest.approx(1.4)
        assert out.epsilon == 2.0

    def test_high_budget_recovers_truth(self, overlap_graph):
        outs = [
            private_pair_ingredients(
                overlap_graph, Layer.UPPER, 0, 1, 40.0, rng=s
            )
            for s in range(20)
        ]
        assert np.mean([o.c2_estimate for o in outs]) == pytest.approx(8.0, abs=0.5)
        assert np.mean([o.noisy_degree_u for o in outs]) == pytest.approx(10.0, abs=0.5)

    def test_invalid_fraction(self, overlap_graph):
        with pytest.raises(PrivacyError):
            private_pair_ingredients(
                overlap_graph, Layer.UPPER, 0, 1, 2.0, degree_fraction=1.5
            )


class TestSimilarityKinds:
    def test_all_kinds_in_unit_interval(self, overlap_graph):
        for kind in SIMILARITY_KINDS:
            est = estimate_similarity(
                overlap_graph, Layer.UPPER, 0, 1, 2.0, kind=kind, rng=3
            )
            assert 0.0 <= est.value <= 1.0
            assert est.kind == kind

    def test_unknown_kind(self, overlap_graph):
        with pytest.raises(ReproError):
            estimate_similarity(overlap_graph, Layer.UPPER, 0, 1, 2.0, kind="nope")

    @pytest.mark.parametrize(
        "kind,expected",
        [
            ("jaccard", 8 / 12),
            ("dice", 16 / 20),
            ("cosine", 8 / 10),
            ("overlap", 8 / 10),
        ],
    )
    def test_kinds_approach_truth_at_high_budget(self, overlap_graph, kind, expected):
        values = [
            estimate_similarity(
                overlap_graph, Layer.UPPER, 0, 1, 40.0, kind=kind, rng=s
            ).value
            for s in range(30)
        ]
        assert np.mean(values) == pytest.approx(expected, abs=0.08)

    def test_formulas_on_exact_inputs(self):
        assert SIMILARITY_KINDS["jaccard"](3, 5, 4) == pytest.approx(3 / 6)
        assert SIMILARITY_KINDS["dice"](3, 5, 4) == pytest.approx(6 / 9)
        assert SIMILARITY_KINDS["cosine"](3, 4, 9) == pytest.approx(0.5)
        assert SIMILARITY_KINDS["overlap"](3, 5, 4) == pytest.approx(0.75)

    def test_degenerate_denominators(self):
        assert SIMILARITY_KINDS["jaccard"](0, 0, 0) == 0.0
        assert SIMILARITY_KINDS["cosine"](1, 0, 5) == 0.0
        assert SIMILARITY_KINDS["overlap"](1, 0, 5) == 0.0


class TestTopK:
    @pytest.fixture()
    def ranked_graph(self) -> BipartiteGraph:
        """Candidate 1 shares 9 items with vertex 0; candidate 2 shares 4;
        candidate 3 shares none."""
        edges = [(0, i) for i in range(10)]
        edges += [(1, i) for i in range(1, 10)] + [(1, 20)]
        edges += [(2, i) for i in range(4)] + [(2, j) for j in range(21, 27)]
        edges += [(3, j) for j in range(27, 37)]
        return BipartiteGraph(4, 40, edges)

    def test_high_budget_ranks_correctly(self, ranked_graph):
        top = top_k_similar(
            ranked_graph, Layer.UPPER, 0, [1, 2, 3], k=2,
            total_epsilon=60.0, rng=4,
        )
        assert [vertex for vertex, _ in top] == [1, 2]

    def test_batch_search_charges_full_budget_once(self, ranked_graph):
        """The default batch method runs one shared round: every vertex is
        charged the whole analyst budget exactly once, so each pair's
        ingredients carry the full epsilon (no per-comparison split)."""
        top = top_k_similar(
            ranked_graph, Layer.UPPER, 0, [1, 2, 3], k=3,
            total_epsilon=6.0, rng=5,
        )
        for _, est in top:
            assert est.ingredients.epsilon == pytest.approx(6.0)
            assert est.ingredients.epsilon_degrees + est.ingredients.epsilon_c2 == (
                pytest.approx(6.0)
            )

    def test_per_pair_method_splits_budget(self, ranked_graph):
        top = top_k_similar(
            ranked_graph, Layer.UPPER, 0, [1, 2, 3], k=3,
            total_epsilon=6.0, method="multir-ds", rng=5,
        )
        for _, est in top:
            assert est.ingredients.epsilon == pytest.approx(2.0)

    def test_query_vertex_excluded_from_candidates(self, ranked_graph):
        top = top_k_similar(
            ranked_graph, Layer.UPPER, 0, [0, 1], k=5, total_epsilon=4.0, rng=6
        )
        assert [vertex for vertex, _ in top] == [1]

    def test_empty_candidates(self, ranked_graph):
        assert top_k_similar(
            ranked_graph, Layer.UPPER, 0, [], k=3, total_epsilon=2.0
        ) == []

    def test_invalid_k(self, ranked_graph):
        with pytest.raises(ReproError):
            top_k_similar(
                ranked_graph, Layer.UPPER, 0, [1], k=0, total_epsilon=2.0
            )


class TestButterflies:
    def test_unbiased_for_known_pair(self, overlap_graph):
        """E[B̂] must equal C(C2, 2) = C(8, 2) = 28."""
        rngs = spawn_rngs(99, 3000)
        values = np.array(
            [
                estimate_butterflies_between(
                    overlap_graph, Layer.UPPER, 0, 1, 2.0, rng=r
                ).value
                for r in rngs
            ]
        )
        truth = butterflies_between(overlap_graph, Layer.UPPER, 0, 1)
        assert truth == 28
        se = values.std(ddof=1) / np.sqrt(values.size)
        assert abs(values.mean() - truth) < 5 * se

    def test_unbiased_for_disjoint_pair(self, overlap_graph):
        rngs = spawn_rngs(7, 2000)
        values = np.array(
            [
                estimate_butterflies_between(
                    overlap_graph, Layer.UPPER, 0, 2, 2.0, rng=r
                ).value
                for r in rngs
            ]
        )
        se = values.std(ddof=1) / np.sqrt(values.size)
        assert abs(values.mean() - 0.0) < 5 * se

    def test_high_budget_nails_it(self, overlap_graph):
        est = estimate_butterflies_between(
            overlap_graph, Layer.UPPER, 0, 1, 60.0, rng=1
        )
        assert est.value == pytest.approx(28, abs=1.5)

    def test_invalid_fraction(self, overlap_graph):
        with pytest.raises(PrivacyError):
            estimate_butterflies_between(
                overlap_graph, Layer.UPPER, 0, 1, 2.0, degree_fraction=0.0
            )

    def test_global_estimate_unbiased_at_high_budget(self):
        graph = random_bipartite(20, 15, 90, rng=8)
        truth = count_butterflies(graph)
        estimates = [
            estimate_global_butterflies(
                graph, Layer.UPPER, epsilon=40.0, num_samples=60, rng=s
            )
            for s in range(40)
        ]
        se = np.std(estimates, ddof=1) / np.sqrt(len(estimates))
        assert abs(np.mean(estimates) - truth) < max(5 * se, 0.15 * truth + 1)

    def test_global_estimate_tiny_layer(self):
        graph = BipartiteGraph(1, 5, [(0, 0)])
        assert estimate_global_butterflies(graph, Layer.UPPER, 2.0) == 0.0

    def test_global_invalid_samples(self):
        graph = random_bipartite(5, 5, 10, rng=1)
        with pytest.raises(PrivacyError):
            estimate_global_butterflies(graph, Layer.UPPER, 2.0, num_samples=0)


class TestTotalBudgetProjection:
    def test_per_query_budget_is_total_over_k_minus_one(self, overlap_graph):
        # 3 vertices -> each vertex joins 2 pairs -> per-query eps = total/2.
        graph = ldp_projection_with_total_budget(
            overlap_graph, Layer.UPPER, [0, 1, 2], total_epsilon=4.0,
            threshold=-1e9, rng=2,
        )
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3  # threshold keeps everything

    def test_needs_two_vertices(self, overlap_graph):
        with pytest.raises(PrivacyError):
            ldp_projection_with_total_budget(
                overlap_graph, Layer.UPPER, [0], total_epsilon=2.0
            )

    def test_strong_edge_survives_with_decent_total(self, overlap_graph):
        graph = ldp_projection_with_total_budget(
            overlap_graph, Layer.UPPER, [0, 1, 2], total_epsilon=40.0,
            threshold=3.0, rng=3,
        )
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)

"""Regression tests for the HLL epsilon stability floor.

The 31-symbol k-RR inversion behind the HLL estimator destabilizes once
the per-view budget drops below :data:`HLL_EPSILON_FLOOR` (the truthful
report margin vanishes and register debiasing blows up). These tests pin
the boundary exactly: at the floor everything is silent; one ulp below
it every entry point — the check itself, ``HllSketch.release``, and
``NoisyViewCache`` construction — warns (or refuses under ``strict``).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.engine.sketches import (
    HLL_EPSILON_FLOOR,
    SketchConfig,
    check_sketch_epsilon,
    sketch_family,
)
from repro.errors import ProtocolError
from repro.graph import Layer, random_bipartite
from repro.serving import NoisyViewCache

BELOW = float(np.nextafter(HLL_EPSILON_FLOOR, 0.0))


def _config(kind="hll", m=16):
    return SketchConfig(kind=kind, m=m)


class TestCheckBoundary:
    def test_at_floor_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            check_sketch_epsilon(_config(), HLL_EPSILON_FLOOR)
            check_sketch_epsilon(_config(), HLL_EPSILON_FLOOR + 1.0)

    def test_just_below_floor_warns(self):
        with pytest.warns(RuntimeWarning, match="stability"):
            check_sketch_epsilon(_config(), BELOW)

    def test_strict_refuses_below_floor(self):
        with pytest.raises(ProtocolError, match="stability"):
            check_sketch_epsilon(_config(), BELOW, strict=True)
        # strict mode is equally silent at the boundary itself
        check_sketch_epsilon(_config(), HLL_EPSILON_FLOOR, strict=True)

    @pytest.mark.parametrize("kind,m", [("bloom", 128), ("voc", 16)])
    def test_other_families_have_no_floor(self, kind, m):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            check_sketch_epsilon(_config(kind, m), 0.25)
            check_sketch_epsilon(_config(kind, m), BELOW, strict=True)


class TestEntryPoints:
    def test_hll_release_warns_below_floor(self):
        family = sketch_family(_config())
        raw = np.zeros((3, 16), dtype=np.int64)
        with pytest.warns(RuntimeWarning, match="stability"):
            family.release(raw, BELOW, rng=np.random.default_rng(0))

    def test_hll_release_silent_at_floor(self):
        family = sketch_family(_config())
        raw = np.zeros((3, 16), dtype=np.int64)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            family.release(
                raw, HLL_EPSILON_FLOOR, rng=np.random.default_rng(0)
            )

    def test_cache_construction_warns_below_floor(self):
        graph = random_bipartite(12, 10, 40, rng=21)
        with pytest.warns(RuntimeWarning, match="stability"):
            NoisyViewCache(
                graph, Layer.UPPER, BELOW, max_entries=64, sketch=_config()
            )

    def test_cache_construction_silent_with_bloom(self):
        graph = random_bipartite(12, 10, 40, rng=22)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            NoisyViewCache(
                graph, Layer.UPPER, BELOW, max_entries=64,
                sketch=_config("bloom", 128),
            )

"""Serving-layer resilience: shedding, deadlines, watchdog, shutdown race.

The contract under test: every refusal the resilience layer issues —
load-shed (:class:`ServerOverloadedError`), deadline expiry
(:class:`QueryDeadlineError`), abandoned tick
(:class:`ServerStalledError`) — is typed, reaches exactly the affected
caller, and moves **no budget**: shedding and deadline pruning happen
before tenant admission, and a stalled tick refunds its admission
debits. The server itself survives all of it and keeps serving.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.errors import (
    ProtocolError,
    QueryDeadlineError,
    ServerOverloadedError,
    ServerStalledError,
)
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.protocol.session import ExecutionMode
from repro.serving import QueryServer, TenantRegistry

EPSILON = 2.0


@pytest.fixture()
def graph():
    return random_bipartite(60, 50, 520, rng=7)


def make_registry(n=3, budget=100.0):
    registry = TenantRegistry()
    for i in range(n):
        registry.register(f"t{i}", budget)
    return registry


# ----------------------------------------------------------------------
# Parameter validation
# ----------------------------------------------------------------------
class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_pending": 0},
            {"max_pending": -3},
            {"query_deadline_s": 0},
            {"query_deadline_s": -1.0},
            {"tick_watchdog_s": 0},
            {"shard_timeout_s": -1.0, "shards": 2},
        ],
    )
    def test_rejects_bad_resilience_params(self, graph, kwargs):
        with pytest.raises(ProtocolError):
            QueryServer(graph, Layer.UPPER, EPSILON, **kwargs)

    def test_rejects_nonpositive_per_call_deadline(self, graph):
        async def run():
            async with QueryServer(graph, Layer.UPPER, EPSILON, rng=1) as server:
                with pytest.raises(ProtocolError, match="deadline_s"):
                    await server.query(0, 1, deadline_s=0)

        asyncio.run(run())


# ----------------------------------------------------------------------
# Load shedding (max_pending)
# ----------------------------------------------------------------------
class TestLoadShedding:
    def test_oldest_deadline_query_is_the_victim(self, graph):
        """Overflow refuses the queued query with the earliest deadline,
        not the newcomer, and no tenant is debited for it."""

        async def run():
            registry = make_registry()
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE,
                tick_interval=0.25, max_pending=2,
                tenants=registry, rng=3,
            ) as server:
                victim = asyncio.ensure_future(
                    server.query(0, 1, tenant="t0", deadline_s=30.0)
                )
                keeper = asyncio.ensure_future(
                    server.query(2, 3, tenant="t1", deadline_s=60.0)
                )
                await asyncio.sleep(0)  # let both enqueue
                assert len(server._pending) == 2
                # Queue is full: this admission sheds the oldest deadline.
                newcomer = await server.query(4, 5, tenant="t2")
                with pytest.raises(ServerOverloadedError):
                    await victim
                return server, registry, await keeper, newcomer

        server, registry, keeper, newcomer = asyncio.run(run())
        assert server.stats.queries_shed == 1
        assert keeper.pair.a == 2 and newcomer.pair.a == 4
        # The shed tenant was never admitted, so nothing was charged.
        assert registry.get("t0").stats.epsilon_charged == 0.0

    def test_newcomer_is_refused_when_it_holds_the_oldest_deadline(self, graph):
        async def run():
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                tick_interval=0.25, max_pending=1, rng=3,
            ) as server:
                keeper = asyncio.ensure_future(server.query(0, 1))
                await asyncio.sleep(0)
                # The queued query has no deadline; the newcomer's finite
                # deadline makes it the shedding victim.
                with pytest.raises(ServerOverloadedError):
                    await server.query(2, 3, deadline_s=5.0)
                return server, await keeper

        server, keeper = asyncio.run(run())
        assert server.stats.queries_shed == 1
        assert keeper.pair == keeper.pair  # keeper resolved normally
        assert server.stats.queries_served == 1

    def test_deadline_free_overflow_refuses_the_newcomer(self, graph):
        async def run():
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                tick_interval=0.25, max_pending=1, rng=3,
            ) as server:
                keeper = asyncio.ensure_future(server.query(0, 1))
                await asyncio.sleep(0)
                with pytest.raises(ServerOverloadedError):
                    await server.query(2, 3)
                await keeper
                return server

        server = asyncio.run(run())
        assert server.stats.queries_shed == 1


# ----------------------------------------------------------------------
# Per-query deadlines
# ----------------------------------------------------------------------
class TestQueryDeadlines:
    def test_expired_query_fails_without_charging(self, graph):
        async def run():
            registry = make_registry()
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE,
                tick_interval=0.3, tenants=registry, rng=3,
            ) as server:
                doomed = asyncio.ensure_future(
                    server.query(0, 1, tenant="t0", deadline_s=0.05)
                )
                served = asyncio.ensure_future(
                    server.query(2, 3, tenant="t1")
                )
                with pytest.raises(QueryDeadlineError):
                    await doomed
                return server, registry, await served

        server, registry, served = asyncio.run(run())
        assert server.stats.deadline_expired == 1
        assert server.stats.queries_served == 1
        assert served.pair.a == 2
        # Pruning precedes admission: the expired tenant paid nothing.
        assert registry.get("t0").stats.epsilon_charged == 0.0
        assert registry.get("t1").stats.epsilon_charged > 0.0

    def test_server_default_deadline_applies(self, graph):
        async def run():
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                tick_interval=0.3, query_deadline_s=0.05, rng=3,
            ) as server:
                with pytest.raises(QueryDeadlineError):
                    await server.query(0, 1)
                # A generous per-call override outlives the tick delay.
                estimate = await server.query(2, 3, deadline_s=30.0)
                return server, estimate

        server, estimate = asyncio.run(run())
        assert server.stats.deadline_expired == 1
        assert estimate.pair.a == 2


# ----------------------------------------------------------------------
# Tick watchdog
# ----------------------------------------------------------------------
class TestTickWatchdog:
    def test_stuck_tick_fails_callers_and_refunds(self, graph):
        """A hung engine call is abandoned: callers get a typed error,
        admission debits come back, and the server keeps serving."""

        async def run():
            registry = make_registry()
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE,
                tick_watchdog_s=0.15, tenants=registry, rng=3,
            ) as server:
                real = server.engine.estimate_pairs

                def stuck(*args, **kwargs):
                    time.sleep(0.6)  # well past the watchdog
                    return real(*args, **kwargs)

                server.engine.estimate_pairs = stuck
                with pytest.raises(ServerStalledError):
                    await server.query(0, 1, tenant="t0")
                spent_after_stall = registry.get("t0").stats.epsilon_charged
                # The abandoned call keeps running as a zombie and later
                # ticks wait for it: let it drain before re-querying.
                while server._tick_busy:
                    await asyncio.sleep(0.02)
                # Un-wedge the engine: the server must still serve.
                server.engine.estimate_pairs = real
                estimate = await server.query(2, 3, tenant="t1")
                return server, spent_after_stall, estimate

        server, spent_after_stall, estimate = asyncio.run(run())
        assert server.stats.stalled_ticks == 1
        assert server.stats.errors >= 1
        assert spent_after_stall == 0.0, "stalled tick must refund admission"
        assert estimate.pair.a == 2
        assert server.stats.queries_served == 1

    def test_zombie_tick_serializes_later_ticks(self, graph):
        """Regression: the watchdog used to clear the busy flag on
        timeout while the abandoned engine call kept running, so the
        next tick could mutate the cache, ledger and rng concurrently
        with the zombie. The flag now holds until the call actually
        finishes: later ticks wait for it (or stall in turn), and
        engine calls never overlap."""

        async def run():
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE, tick_watchdog_s=0.15, rng=3,
            ) as server:
                real = server.engine.estimate_pairs
                release = threading.Event()
                state = {"active": 0, "max_active": 0, "stalled_once": False}

                def slow(*args, **kwargs):
                    state["active"] += 1
                    state["max_active"] = max(
                        state["max_active"], state["active"]
                    )
                    try:
                        if not state["stalled_once"]:
                            state["stalled_once"] = True
                            release.wait(5.0)  # wedged until we say so
                        return real(*args, **kwargs)
                    finally:
                        state["active"] -= 1

                server.engine.estimate_pairs = slow
                with pytest.raises(ServerStalledError):
                    await server.query(0, 1)
                assert server._tick_busy, "zombie must keep the tick slot"
                # The zombie is still wedged: the next tick must refuse
                # to run beside it and stall in its turn.
                with pytest.raises(ServerStalledError):
                    await server.query(2, 3)
                release.set()
                while server._tick_busy:
                    await asyncio.sleep(0.02)
                estimate = await server.query(4, 5)
                return server, state, estimate

        server, state, estimate = asyncio.run(run())
        assert state["max_active"] == 1, "engine calls must never overlap"
        assert server.stats.stalled_ticks == 2
        assert estimate.pair.a == 4
        assert server.stats.queries_served == 1

    def test_fast_ticks_pass_under_watchdog(self, graph):
        async def run():
            async with QueryServer(
                graph, Layer.UPPER, EPSILON, tick_watchdog_s=30.0, rng=3,
            ) as server:
                return server, await asyncio.gather(
                    *(server.query(0, i) for i in range(1, 6))
                )

        server, results = asyncio.run(run())
        assert len(results) == 5
        assert server.stats.stalled_ticks == 0


# ----------------------------------------------------------------------
# stop() vs the rotation window (the shutdown race)
# ----------------------------------------------------------------------
class TestShutdownRace:
    def test_stop_inside_rotation_window_skips_the_rotation(self, graph):
        """Regression: a timed rotation waking during shutdown used to be
        able to warm-draw into a shard runner stop() was freeing. The
        closing flag now gates the rotation body."""

        async def run():
            async with QueryServer(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE,
                epoch_seconds=0.08, warm_vertices=4, shards=2, rng=3,
            ) as server:
                await server.query(0, 1)
                # Land stop() right inside the rotation window: the timer
                # is mid-sleep and will wake while we are tearing down.
                await asyncio.sleep(0.06)
            return server

        server = asyncio.run(run())
        assert server._task is None and server._rotator is None
        # Whatever rotations ran, none touched the freed runner: the
        # runner's registry is empty and serving state is consistent.
        assert server._shard_runner is not None
        assert not server._shard_runner._segments

    def test_stop_then_restart_still_serves(self, graph):
        async def run():
            server = QueryServer(
                graph, Layer.UPPER, EPSILON,
                mode=ExecutionMode.MATERIALIZE,
                epoch_seconds=0.05, warm_vertices=2, shards=2, rng=3,
            )
            for _ in range(2):
                async with server:
                    estimate = await server.query(0, 1)
                    await asyncio.sleep(0.07)  # cross a rotation window
            return server, estimate

        server, estimate = asyncio.run(run())
        assert estimate.pair.a == 0
        assert server.stats.queries_served == 2

"""The async serving layer: concurrent clients, cache savings, epochs.

Many clients fire single-pair common-neighborhood queries at one
:class:`~repro.serving.QueryServer`; the server coalesces each burst into
one batch-engine tick and answers repeat touches of a vertex from its
epoch-scoped noisy view at zero additional privacy budget. The demo
shows the three headline behaviors:

1. concurrent queries coalescing into shared ticks,
2. a full workload replay inside one epoch costing zero extra budget
   (and returning bit-identical estimates),
3. an epoch rotation dropping the views, so the next pass re-draws and
   honestly recharges,
4. multi-tenant metering: two analysts share the hot views, each pays
   only for its own misses, and an exhausted quota refuses only its
   owner's queries,
5. a cache byte budget: resident memory stays bounded while evicted
   views are reconstructed deterministically — charged exactly once per
   epoch no matter how often they churn.

Run:  python examples/serving_demo.py
"""

from __future__ import annotations

import asyncio

import numpy as np

import repro
from repro import Layer
from repro.applications.similarity import top_k_similar_served
from repro.errors import BudgetExceededError
from repro.serving import (
    QueryServer,
    TenantRegistry,
    serving_report,
    simulate_clients,
)

EPSILON = 2.0


async def demo() -> None:
    graph = repro.load_dataset("RM", max_edges=20_000)
    print(f"serving graph: {graph}\n")

    async with QueryServer(
        graph, Layer.UPPER, EPSILON, degree_epsilon=0.5, rng=11
    ) as server:
        # --- 1. a burst of concurrent clients, coalesced into ticks ----
        result = await simulate_clients(server, num_clients=25, queries_per_client=8, rng=7)
        print("burst of 25 concurrent clients x 8 queries:")
        print(f"  {server.stats.ticks} ticks "
              f"(mean {server.stats.mean_coalesced():.1f} queries/tick), "
              f"max per-vertex spend {server.accountant.max_epoch_spent():.2f}\n")

        # --- 2. replay the same workload inside the epoch: free --------
        spend_before = server.accountant.max_lifetime_spent()
        replay = await asyncio.gather(
            *(server.query_pair(e.pair) for e in result.estimates)
        )
        identical = all(
            r.value == e.value for r, e in zip(replay, result.estimates)
        )
        print("replaying all 200 queries inside the epoch:")
        print(f"  extra budget spent: "
              f"{server.accountant.max_lifetime_spent() - spend_before:.3f} "
              f"(bit-identical answers: {identical}, "
              f"hit rate {server.cache.stats.hit_rate():.0%})\n")

        # --- 3. rotate the epoch: views dropped, honest recharge -------
        server.rotate_epoch()
        await asyncio.gather(*(server.query_pair(e.pair) for e in result.estimates[:40]))
        print("after rotating the epoch and re-serving 40 of the queries:")
        print(f"  per-epoch spend {server.accountant.max_epoch_spent():.2f}, "
              f"honest lifetime spend "
              f"{server.accountant.max_lifetime_spent():.2f} "
              f"(one epsilon per epoch touched)\n")

        # --- bonus: a served application — similarity search -----------
        degrees = graph.degrees(Layer.UPPER)
        target = int(np.argmax(degrees))
        candidates = [int(v) for v in np.argsort(degrees)[-30:] if int(v) != target]
        ranked = await top_k_similar_served(server, target, candidates, k=5)
        print(f"top-5 similar to hub vertex {target} (served, epoch-cached):")
        for vertex, estimate in ranked:
            print(f"  vertex {vertex:>5}  {estimate.kind}={estimate.value:.3f}")
        print()

        print(serving_report(server, result))

    # --- 4. multi-tenant metering over one shared cache ------------
    tenants = TenantRegistry()
    tenants.register("alice", total_epsilon=8.0)
    tenants.register("bob", total_epsilon=80.0)
    async with QueryServer(
        graph, Layer.UPPER, EPSILON, tenants=tenants, rng=11
    ) as server:
        await server.query(3, 7, tenant="alice")  # alice pays both vertices
        await server.query(3, 7, tenant="bob")  # cache hit: bob pays nothing
        await server.query(5, 8, tenant="alice")  # alice's quota is now gone
        try:
            await server.query(9, 11, tenant="alice")
        except BudgetExceededError:
            print("alice is out of quota; bob keeps being served:")
        await server.query(9, 11, tenant="bob")
        print(tenants.report())
        print()

    # --- 5. bounded cache: evictions recharge free -----------------
    async with QueryServer(
        graph, Layer.UPPER, EPSILON, cache_bytes=50_000, rng=11
    ) as server:
        first = [await server.query(0, i) for i in range(1, 40)]
        second = [await server.query(0, i) for i in range(1, 40)]
        stats = server.cache.stats
        identical = [e.value for e in first] == [e.value for e in second]
        print(
            f"50 KB cache budget: {server.cache.nbytes():,} B resident, "
            f"{stats.evictions} evictions, {stats.recharges} recharges"
        )
        print(
            f"  replay bit-identical: {identical}, max per-vertex spend "
            f"{server.accountant.max_epoch_spent():.1f} "
            f"(charged once despite the churn)"
        )


if __name__ == "__main__":
    asyncio.run(demo())

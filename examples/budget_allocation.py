"""Privacy-budget allocation: why MultiR-DS optimizes (ε1, α) per query.

Reproduces the intuition of the paper's Fig. 5 and Fig. 8 in miniature:
for balanced degrees the plain average of the two single-source estimators
is nearly optimal, but under strong imbalance the optimizer shifts weight
toward the low-degree vertex and re-splits the budget — and the empirical
error follows the prediction.

Run:  python examples/budget_allocation.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import Layer
from repro.analysis import double_source_variance, optimize_double_source
from repro.estimators import MultiRoundDoubleSource, MultiRoundDoubleSourceBasic
from repro.experiments import run_fig5


def landscape() -> None:
    print("Analytic loss landscape (paper Fig. 5):\n")
    for panel in run_fig5(num_points=6):
        print(panel.to_text())
        print()


def empirical_check() -> None:
    graph = repro.load_dataset("RM", max_edges=60_000)
    degrees = graph.degrees(Layer.UPPER)
    heavy = int(np.argmax(degrees))
    eligible = np.flatnonzero(degrees >= 2)
    light = int(eligible[np.argmin(degrees[eligible])])
    du, dw = int(degrees[heavy]), int(degrees[light])
    true = graph.count_common_neighbors(Layer.UPPER, heavy, light)
    print(f"imbalanced pair: degrees ({du}, {dw}), true C2 = {true}")

    epsilon = 2.0
    alloc = optimize_double_source(epsilon, du, dw, eps0=0.05 * epsilon)
    naive_loss = double_source_variance(
        epsilon / 2, epsilon / 2, 0.5, du, dw
    )
    print(f"optimizer: eps1={alloc.eps1:.3f}, alpha={alloc.alpha:.3f} "
          f"-> predicted L2 {alloc.predicted_loss:.1f} "
          f"(plain average would be {naive_loss:.1f})")

    trials = 300
    for estimator in (MultiRoundDoubleSourceBasic(), MultiRoundDoubleSource()):
        errs = []
        for t in range(trials):
            r = estimator.estimate(
                graph, Layer.UPPER, heavy, light, epsilon, rng=10_000 + t
            )
            errs.append(abs(r.value - true))
        print(f"{estimator.name:<16} empirical MAE over {trials} trials: "
              f"{np.mean(errs):.3f}")


def main() -> None:
    landscape()
    empirical_check()


if __name__ == "__main__":
    main()

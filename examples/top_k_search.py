"""Top-k similar users under one analyst budget.

The similarity search from the paper's introduction, served by the batch
query engine: all candidate comparisons form ONE shared noisy round, so
every involved user — the target and each candidate — is charged the
analyst's budget exactly once (parallel composition), no matter how many
candidates are screened. Compare with the per-pair query model, where the
same budget must be split across the comparisons and utility degrades as
the candidate pool grows.

Run:  python examples/top_k_search.py
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro import Layer
from repro.applications import top_k_similar


def main() -> None:
    graph = repro.load_dataset("RM", max_edges=60_000)
    degrees = graph.degrees(Layer.UPPER)
    target = int(np.argsort(degrees)[-8])
    candidates = [int(v) for v in np.argsort(degrees)[-40:] if int(v) != target]
    print(f"dataset: {graph}")
    print(f"target user {target} (degree {degrees[target]}); "
          f"screening {len(candidates)} candidates\n")

    def exact_top5():
        return sorted(
            candidates,
            key=lambda c: graph.jaccard(Layer.UPPER, target, c),
            reverse=True,
        )[:5]

    for total_epsilon in (2.0, 8.0, 40.0):
        # Batch engine (default): one shared round at the full budget.
        start = time.perf_counter()
        batch_top = top_k_similar(
            graph, Layer.UPPER, target, candidates, k=5,
            total_epsilon=total_epsilon, kind="jaccard", rng=17,
        )
        batch_ms = (time.perf_counter() - start) * 1e3

        # Paper query model: independent per-pair protocols, budget split.
        start = time.perf_counter()
        split_top = top_k_similar(
            graph, Layer.UPPER, target, candidates, k=5,
            total_epsilon=total_epsilon, kind="jaccard",
            method="multir-ds", rng=17,
        )
        split_ms = (time.perf_counter() - start) * 1e3

        exact = set(exact_top5())
        batch_hits = len({v for v, _ in batch_top} & exact)
        split_hits = len({v for v, _ in split_top} & exact)
        per_pair = total_epsilon / len(candidates)
        print(f"analyst budget {total_epsilon:5.1f}:")
        print(f"  batch engine   top-5 overlap {batch_hits}/5   "
              f"{batch_ms:7.1f} ms total ({batch_ms/len(candidates):5.2f} ms/pair), "
              f"each vertex charged {total_epsilon:.1f} once")
        print(f"  per-pair split top-5 overlap {split_hits}/5   "
              f"{split_ms:7.1f} ms total ({split_ms/len(candidates):5.2f} ms/pair), "
              f"{per_pair:.3f} per comparison")

    print("\nThe shared batch round spends the whole budget on every "
          "comparison at once,\nso its ranking quality does not decay with "
          "the number of candidates screened\n— and the vectorized engine "
          "answers the workload in a fraction of the time.")


if __name__ == "__main__":
    main()

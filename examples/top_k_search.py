"""Top-k similar users under one analyst budget.

The similarity search from the paper's introduction, with honest
cross-query accounting: the analyst holds ONE total budget for the whole
search, split across candidate comparisons by the QueryBudgetManager —
so the target user's cumulative privacy loss is bounded no matter how
many candidates are screened.

Run:  python examples/top_k_search.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import Layer
from repro.applications import top_k_similar


def main() -> None:
    graph = repro.load_dataset("RM", max_edges=60_000)
    degrees = graph.degrees(Layer.UPPER)
    target = int(np.argsort(degrees)[-8])
    candidates = [int(v) for v in np.argsort(degrees)[-40:] if int(v) != target]
    print(f"dataset: {graph}")
    print(f"target user {target} (degree {degrees[target]}); "
          f"screening {len(candidates)} candidates\n")

    for total_epsilon in (8.0, 40.0, 200.0):
        per_query = total_epsilon / len(candidates)
        top = top_k_similar(
            graph, Layer.UPPER, target, candidates, k=5,
            total_epsilon=total_epsilon, kind="jaccard", rng=17,
        )
        # Exact ranking for comparison (non-private, evaluation only).
        exact = sorted(
            candidates,
            key=lambda c: graph.jaccard(Layer.UPPER, target, c),
            reverse=True,
        )[:5]
        hits = len({v for v, _ in top} & set(exact))
        print(f"analyst budget {total_epsilon:6.1f} "
              f"(= {per_query:.3f} per comparison): "
              f"top-5 overlap with exact ranking {hits}/5")

    print("\nWith a fixed total budget, screening more candidates means less "
          "budget per\ncomparison — the utility cost of honest sequential "
          "composition.")


if __name__ == "__main__":
    main()

"""Private similarity search on a user–item graph (e-commerce scenario).

The paper's introduction motivates common-neighbor estimation with vertex
similarity on shopping graphs: revealing which items two users share is a
privacy breach, so similarity must be computed from private estimates.
This example ranks candidate users by privately-estimated Jaccard
similarity to a target user — all comparisons answered by ONE batch
query engine round (each involved user uploads a single noisy list, so
per-user privacy loss is epsilon for the whole search) — and compares the
private ranking with the exact one, then builds a thresholded LDP
projection graph through the same engine.

Run:  python examples/similarity_search.py
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro import Layer
from repro.applications import batch_pair_ingredients, exact_projection, ldp_projection
from repro.graph.sampling import QueryPair


def main() -> None:
    graph = repro.load_dataset("RM", max_edges=60_000)
    print(f"dataset RM (rmwiki analogue): {graph}")

    degrees = graph.degrees(Layer.UPPER)
    target = int(np.argsort(degrees)[-5])  # an active but not extreme user
    candidates = [int(v) for v in np.argsort(degrees)[-30:] if int(v) != target][:12]
    print(f"target user {target} (degree {degrees[target]}), "
          f"{len(candidates)} candidates\n")

    epsilon = 2.0
    pairs = [QueryPair(Layer.UPPER, target, cand) for cand in candidates]
    start = time.perf_counter()
    batch = batch_pair_ingredients(graph, Layer.UPPER, pairs, epsilon, rng=1000)
    elapsed = time.perf_counter() - start
    print(f"batch engine answered {len(pairs)} comparisons in {elapsed*1e3:.1f} ms "
          f"({elapsed / len(pairs) * 1e3:.2f} ms/pair), "
          f"per-user loss {batch.max_epsilon_spent:.2f}")

    rows = []
    for i, cand in enumerate(candidates):
        c2 = batch.c2_estimates[i]
        union = batch.noisy_degrees_a[i] + batch.noisy_degrees_b[i] - c2
        private = min(max(c2 / union if union > 0 else 0.0, 0.0), 1.0)
        rows.append((cand, private, graph.jaccard(Layer.UPPER, target, cand)))

    rows.sort(key=lambda r: r[1], reverse=True)
    print(f"\n{'candidate':>9} {'jaccard (LDP)':>14} {'jaccard (true)':>15}")
    for cand, private, exact in rows:
        print(f"{cand:>9} {private:>14.4f} {exact:>15.4f}")

    private_top3 = {r[0] for r in rows[:3]}
    exact_top3 = {r[0] for r in sorted(rows, key=lambda r: r[2], reverse=True)[:3]}
    print(f"\ntop-3 overlap (private vs exact): "
          f"{len(private_top3 & exact_top3)}/3")

    # Build a small LDP projection graph over the most active users — the
    # batch method answers the whole all-pairs workload in one engine round.
    group = candidates[:8] + [target]
    start = time.perf_counter()
    noisy_projection = ldp_projection(
        graph, Layer.UPPER, group, epsilon, method="batch-oner",
        threshold=2.0, rng=7,
    )
    elapsed = time.perf_counter() - start
    num_pairs = len(group) * (len(group) - 1) // 2
    reference = exact_projection(graph, Layer.UPPER, group)
    print(f"\nLDP projection over {num_pairs} pairs in {elapsed*1e3:.1f} ms: "
          f"{noisy_projection.number_of_edges()} edges "
          f"(exact projection with weight>2: "
          f"{sum(1 for *_, d in reference.edges(data=True) if d['weight'] > 2)})")


if __name__ == "__main__":
    main()

"""Private similarity search on a user–item graph (e-commerce scenario).

The paper's introduction motivates common-neighbor estimation with vertex
similarity on shopping graphs: revealing which items two users share is a
privacy breach, so similarity must be computed from private estimates.
This example ranks candidate users by privately-estimated Jaccard
similarity to a target user and compares the private ranking with the
exact one, then builds a thresholded LDP projection graph.

Run:  python examples/similarity_search.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import Layer
from repro.applications import estimate_jaccard, exact_projection, ldp_projection


def main() -> None:
    graph = repro.load_dataset("RM", max_edges=60_000)
    print(f"dataset RM (rmwiki analogue): {graph}")

    degrees = graph.degrees(Layer.UPPER)
    target = int(np.argsort(degrees)[-5])  # an active but not extreme user
    candidates = [int(v) for v in np.argsort(degrees)[-30:] if int(v) != target][:12]
    print(f"target user {target} (degree {degrees[target]}), "
          f"{len(candidates)} candidates\n")

    epsilon = 2.0
    rows = []
    for i, cand in enumerate(candidates):
        estimate = estimate_jaccard(
            graph, Layer.UPPER, target, cand, epsilon, method="multir-ds",
            rng=1000 + i,
        )
        exact = graph.jaccard(Layer.UPPER, target, cand)
        rows.append((cand, estimate.value, exact))

    rows.sort(key=lambda r: r[1], reverse=True)
    print(f"{'candidate':>9} {'jaccard (LDP)':>14} {'jaccard (true)':>15}")
    for cand, private, exact in rows:
        print(f"{cand:>9} {private:>14.4f} {exact:>15.4f}")

    private_top3 = {r[0] for r in rows[:3]}
    exact_top3 = {r[0] for r in sorted(rows, key=lambda r: r[2], reverse=True)[:3]}
    print(f"\ntop-3 overlap (private vs exact): "
          f"{len(private_top3 & exact_top3)}/3")

    # Build a small LDP projection graph over the most active users.
    group = candidates[:8] + [target]
    noisy_projection = ldp_projection(
        graph, Layer.UPPER, group, epsilon, threshold=2.0, rng=7
    )
    reference = exact_projection(graph, Layer.UPPER, group)
    print(f"\nLDP projection: {noisy_projection.number_of_edges()} edges "
          f"(exact projection with weight>2: "
          f"{sum(1 for *_, d in reference.edges(data=True) if d['weight'] > 2)})")


if __name__ == "__main__":
    main()

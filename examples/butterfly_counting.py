"""Private butterfly ((2,2)-biclique) counting.

The paper motivates common-neighborhood estimation as the primitive behind
biclique counting; this example builds the base case on top of the
library: an unbiased estimate of the number of butterflies containing a
pair of users, with the plug-in bias removed via the closed-form variance
of the single-source estimator (see repro/applications/butterfly.py for
the derivation), plus a sampled estimate of the global butterfly count.

Run:  python examples/butterfly_counting.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import Layer
from repro.applications import estimate_butterflies_between, estimate_global_butterflies
from repro.graph.motifs import butterflies_between, count_butterflies


def main() -> None:
    graph = repro.random_bipartite(120, 90, 1700, rng=6)
    print(f"graph: {graph}; exact global butterflies = {count_butterflies(graph)}")

    # Pick the pair with the largest overlap for a visible signal.
    pairs = repro.sample_query_pairs(graph, Layer.UPPER, 300, rng=7)
    pair = max(pairs, key=lambda p: graph.count_common_neighbors(p.layer, p.a, p.b))
    truth = butterflies_between(graph, Layer.UPPER, pair.a, pair.b)
    c2 = graph.count_common_neighbors(Layer.UPPER, pair.a, pair.b)
    print(f"\nquery pair ({pair.a}, {pair.b}): C2 = {c2}, "
          f"butterflies containing both = {truth}")

    epsilon = 2.0
    trials = 400
    estimates = [
        estimate_butterflies_between(
            graph, Layer.UPPER, pair.a, pair.b, epsilon, rng=1000 + t
        )
        for t in range(trials)
    ]
    values = np.array([e.value for e in estimates])
    naive_plugin = np.array(
        [e.c2_estimate * (e.c2_estimate - 1) / 2 for e in estimates]
    )
    print(f"\nover {trials} runs at eps={epsilon:g}:")
    print(f"  de-biased estimator : mean {values.mean():8.2f}  (truth {truth})")
    print(f"  naive plug-in C(f,2): mean {naive_plugin.mean():8.2f}  "
          f"(biased up by ~Var(f)/2 = {estimates[0].variance_correction / 2:.1f})")

    global_est = estimate_global_butterflies(
        graph, Layer.UPPER, epsilon=2.0, num_samples=150, rng=9
    )
    print(f"\nsampled global estimate: {global_est:,.0f} "
          f"(exact {count_butterflies(graph):,}; high sampling variance expected)")


if __name__ == "__main__":
    main()

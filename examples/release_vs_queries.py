"""Per-query protocols vs a one-shot noisy-graph release.

The paper's related work contrasts problem-specific protocols (its
contribution) with general-purpose synthetic/noisy graph release. This
example makes the trade-off concrete: a single ε-release answers unlimited
C2 queries for free but each answer carries the full O(n1) candidate-pool
error, while MultiR-DS pays a fresh budget per query and answers with
degree-bounded error.

Run:  python examples/release_vs_queries.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import Layer
from repro.protocol import release_noisy_graph, released_common_neighbors


def main() -> None:
    graph = repro.load_dataset("RM", max_edges=60_000)
    epsilon = 2.0
    pairs = repro.sample_query_pairs(graph, Layer.UPPER, 40, rng=3)
    truths = [graph.count_common_neighbors(p.layer, p.a, p.b) for p in pairs]

    # Paradigm 1: one eps-release, every query is post-processing.
    release = release_noisy_graph(graph, epsilon, rng=4)
    release_err = [
        abs(released_common_neighbors(release, p.layer, p.a, p.b) - t)
        for p, t in zip(pairs, truths)
    ]

    # Paradigm 2: a fresh eps per query through MultiR-DS.
    estimator = repro.MultiRoundDoubleSource()
    query_err = []
    query_bytes = 0
    for i, (p, t) in enumerate(zip(pairs, truths)):
        result = estimator.estimate(graph, p.layer, p.a, p.b, epsilon, rng=100 + i)
        query_err.append(abs(result.value - t))
        query_bytes += result.communication_bytes

    print(f"dataset RM analogue: {graph}; eps = {epsilon:g}; {len(pairs)} queries\n")
    print(f"{'paradigm':<28} {'MAE':>8} {'bytes moved':>14} {'eps per vertex':>15}")
    print("-" * 70)
    print(
        f"{'noisy-graph release':<28} {np.mean(release_err):>8.2f} "
        f"{release.upload_bytes:>14,} {epsilon:>15.2f}"
    )
    print(
        f"{'MultiR-DS per query':<28} {np.mean(query_err):>8.2f} "
        f"{query_bytes:>14,} {epsilon:>15.2f}"
    )
    print(
        "\nThe release amortizes cost over unlimited queries but its error "
        "carries the\nfull candidate pool; the per-query protocol is "
        f"{np.mean(release_err) / max(np.mean(query_err), 1e-9):.0f}x more "
        "accurate at the same per-vertex budget."
    )


if __name__ == "__main__":
    main()

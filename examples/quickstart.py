"""Quickstart: estimate common neighbors under edge LDP.

Builds a small user–item bipartite graph, asks every algorithm in the
library for the number of items two users share, and compares the private
estimates against the ground truth — including each protocol's round
count, communication volume, and realized privacy spend.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro import Layer


def main() -> None:
    # A synthetic e-commerce graph: 500 users x 800 items, 6000 purchases.
    graph = repro.chung_lu_bipartite(
        repro.graph.power_law_degrees(500, exponent=2.2, d_min=2, d_max=200, rng=1),
        repro.graph.power_law_degrees(800, exponent=2.2, d_min=1, d_max=120, rng=2),
        num_edges=6000,
        rng=3,
    )
    print(f"graph: {graph}")

    # Pick a query pair with a non-trivial overlap.
    pairs = repro.sample_query_pairs(graph, Layer.UPPER, 200, rng=4, min_degree=5)
    pair = max(
        pairs, key=lambda p: graph.count_common_neighbors(p.layer, p.a, p.b)
    )
    true_count = graph.count_common_neighbors(Layer.UPPER, pair.a, pair.b)
    du = graph.degree(Layer.UPPER, pair.a)
    dw = graph.degree(Layer.UPPER, pair.b)
    print(f"query: users {pair.a} (deg {du}) and {pair.b} (deg {dw}); "
          f"true common items = {true_count}\n")

    epsilon = 2.0
    header = f"{'algorithm':<16} {'estimate':>9} {'rounds':>6} {'bytes':>9} {'eps spent':>9}"
    print(header)
    print("-" * len(header))
    for name in repro.available_estimators():
        result = repro.estimate_common_neighbors(
            graph, Layer.UPPER, pair.a, pair.b, epsilon, method=name, rng=42
        )
        spent = (
            f"{result.transcript.max_epsilon_spent:.3f}" if result.transcript else "-"
        )
        print(
            f"{name:<16} {result.value:>9.2f} {result.rounds:>6} "
            f"{result.communication_bytes:>9,} {spent:>9}"
        )

    # The analytic loss model predicts how good each estimate should be.
    print("\npredicted L2 losses at eps=2 for this pair:")
    print(f"  OneR      : {repro.oner_variance(epsilon, graph.num_lower, du, dw):9.1f}")
    print(f"  MultiR-SS : {repro.single_source_variance(1.0, 1.0, du):9.1f}")
    alloc = repro.optimize_double_source(epsilon, du, dw, eps0=0.1)
    print(f"  MultiR-DS : {alloc.predicted_loss:9.1f} "
          f"(eps1={alloc.eps1:.2f}, alpha={alloc.alpha:.2f})")


if __name__ == "__main__":
    main()

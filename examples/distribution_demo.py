"""Estimate-distribution demo (paper Fig. 2, in the terminal).

Repeats every algorithm many times on one strongly imbalanced rmwiki query
pair at ε = 1 and prints summary statistics plus ASCII histograms: Naive's
estimates land far right of the true count, OneR straddles it with huge
spread, and the multiple-round estimators concentrate tightly around it.

Run:  python examples/distribution_demo.py
"""

from __future__ import annotations

from repro.experiments import run_fig2


def main() -> None:
    result = run_fig2(dataset="RM", epsilon=1.0, trials=500, max_edges=60_000)
    print(result.to_text(histogram=True))


if __name__ == "__main__":
    main()

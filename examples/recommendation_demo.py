"""Private collaborative filtering on a user-item graph.

The full e-commerce pipeline from the paper's opening example, end to end
under edge LDP: find the users most similar to a target (budgeted
similarity search), have them release noisy item lists once, and recommend
the items their de-biased lists agree on — all without any user's true
purchases leaving their device.

Run:  python examples/recommendation_demo.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import Layer
from repro.applications import recommend_items
from repro.analysis import epsilon_for_target_mae


def main() -> None:
    graph = repro.load_dataset("ML", max_edges=60_000)  # movielens analogue
    degrees = graph.degrees(Layer.UPPER)
    target = int(np.argsort(degrees)[-15])
    candidates = [int(v) for v in np.argsort(degrees)[-80:] if int(v) != target]
    print(f"movielens analogue: {graph}")
    print(f"target user {target} (degree {degrees[target]}), "
          f"{len(candidates)} candidate neighbors\n")

    recs = recommend_items(
        graph, Layer.UPPER, target, candidates,
        epsilon_similarity=80.0, epsilon_lists=4.0,
        k=8, top_items=10, rng=21,
    )
    owned = set(map(int, graph.neighbors(Layer.UPPER, target)))
    print("top recommendations (movies the target hasn't rated):")
    print(f"{'movie':>7} {'score':>8} {'popularity among all users':>28}")
    for rec in recs:
        popularity = graph.degree(Layer.LOWER, rec.item)
        assert rec.item not in owned
        print(f"{rec.item:>7} {rec.score:>8.2f} {popularity:>28}")

    # Planning: what per-comparison budget keeps the similarity search
    # accurate to ~1 common neighbor for a typical pair here?
    du = int(np.median(degrees[np.array(candidates)]))
    eps_needed = epsilon_for_target_mae(
        1.0, "multir-ds", du, du, graph.num_lower
    )
    print(f"\nplanner: MAE <= 1 for a typical pair (deg ~{du}) needs "
          f"eps ~= {eps_needed:.2f} per comparison")


if __name__ == "__main__":
    main()

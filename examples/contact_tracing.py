"""Private co-location analysis (contact-tracing scenario).

People–location bipartite graphs are a motivating application in the paper
(§1): two people's common locations reveal their movements, so the overlap
must be estimated privately. This example scores person pairs by how
*surprisingly large* their privately-estimated co-location count is versus
a degree-based null model — the anomaly view of neighborhood formation —
and checks that genuinely co-moving pairs surface at the top.

Run:  python examples/contact_tracing.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import Layer
from repro.applications import rank_pairs
from repro.graph.sampling import QueryPair


def build_people_location_graph(rng_seed: int = 5):
    """600 people x 250 locations, with three planted co-moving pairs."""
    rng = np.random.default_rng(rng_seed)
    base = repro.chung_lu_bipartite(
        repro.graph.power_law_degrees(600, exponent=2.3, d_min=2, d_max=60, rng=rng),
        repro.graph.power_law_degrees(250, exponent=2.3, d_min=1, d_max=200, rng=rng),
        num_edges=7000,
        rng=rng,
    )
    # Plant co-moving pairs: each pair visits 15 shared locations.
    edges = [tuple(e) for e in base.edges]
    planted = [(0, 1), (2, 3), (4, 5)]
    for a, b in planted:
        shared = rng.choice(250, size=15, replace=False)
        for loc in shared:
            edges.append((a, int(loc)))
            edges.append((b, int(loc)))
    graph = repro.BipartiteGraph(600, 250, np.asarray(edges))
    return graph, planted


def main() -> None:
    graph, planted = build_people_location_graph()
    print(f"people-location graph: {graph}; planted co-moving pairs: {planted}")

    # Candidate pairs: the planted ones hidden among random pairs.
    pairs = [QueryPair(Layer.UPPER, a, b) for a, b in planted]
    pairs += repro.sample_query_pairs(graph, Layer.UPPER, 27, rng=11)

    epsilon = 2.0
    scores = rank_pairs(graph, Layer.UPPER, pairs, epsilon, rng=13)

    print(f"\ntop 8 most anomalous pairs (eps={epsilon:g}):")
    print(f"{'pair':>12} {'C2 (LDP)':>9} {'null E[C2]':>10} {'score':>8} {'true C2':>8}")
    for s in scores[:8]:
        true = graph.count_common_neighbors(Layer.UPPER, s.u, s.w)
        marker = "  <-- planted" if (s.u, s.w) in planted or (s.w, s.u) in planted else ""
        print(
            f"({s.u:>4},{s.w:>5}) {s.c2_estimate:>9.2f} {s.expected_null:>10.2f} "
            f"{s.score:>8.2f} {true:>8}{marker}"
        )

    top = {(s.u, s.w) for s in scores[:8]}
    top |= {(b, a) for a, b in top}
    found = sum(1 for p in planted if p in top)
    print(f"\nplanted pairs surfaced in the top-8: {found}/{len(planted)} "
          f"(noise at eps=2 blurs exact ranks but keeps them visible)")


if __name__ == "__main__":
    main()

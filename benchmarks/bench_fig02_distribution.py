"""Fig. 2 — estimate distributions on rmwiki (ε = 1, imbalanced pair).

Shape assertions (paper §1): Naive is biased far right of the true count;
OneR is unbiased but fat-tailed; MultiR-SS is much tighter; MultiR-DS is
unbiased and at least as tight as OneR despite the extreme imbalance.
"""

from __future__ import annotations

import math

from benchutil import run_once

from repro.experiments.fig2_distribution import run_fig2


def test_fig2_distribution(benchmark, config, emit):
    result = run_once(
        benchmark,
        run_fig2,
        dataset="RM",
        epsilon=1.0,
        trials=config.trials,
        max_edges=config.max_edges,
        rng=config.seed,
    )
    emit("fig02_distribution", result.to_text(histogram=True))

    naive = result.samples["naive"]
    oner = result.samples["oner"]
    ss = result.samples["multir-ss"]
    ds = result.samples["multir-ds"]
    true = result.true_count

    # Naive overcounts by many standard errors (the dense noisy graph).
    naive_se = naive.std(ddof=1) / math.sqrt(naive.size)
    assert naive.mean() - true > 5 * naive_se

    # The unbiased estimators straddle the truth.
    for samples in (oner, ss, ds):
        se = samples.std(ddof=1) / math.sqrt(samples.size)
        assert abs(samples.mean() - true) < 6 * se

    # Concentration ordering: the multiple-round estimators are tighter
    # than OneR, and MultiR-DS handles the imbalanced pair at least as
    # well as the single-source estimator anchored at the heavy vertex.
    assert ss.std() < oner.std()
    assert ds.std() < oner.std()
    assert ds.std() < ss.std() * 1.25

"""Fig. 7 — mean absolute error vs privacy budget ε on 8 large datasets.

Shape assertions: every algorithm's error falls as ε grows; the
multiple-round algorithms dominate Naive/OneR at every ε; CentralDP is the
lower envelope.
"""

from __future__ import annotations

from benchutil import run_once

from repro.experiments.fig7_epsilon import FIG7_DATASETS, run_fig7

EPSILONS = (1.0, 1.5, 2.0, 2.5, 3.0)


def test_fig7_epsilon_sweep(benchmark, config, emit):
    panels = run_once(
        benchmark,
        run_fig7,
        datasets=FIG7_DATASETS,
        epsilons=EPSILONS,
        num_pairs=config.num_pairs,
        max_edges=config.max_edges,
        rng=config.seed,
    )
    emit("fig07_epsilon", "\n\n".join(p.to_text() for p in panels))

    assert len(panels) == len(FIG7_DATASETS)
    for panel, key in zip(panels, FIG7_DATASETS):
        naive = panel.series["naive"]
        oner = panel.series["oner"]
        ds = panel.series["multir-ds"]
        central = panel.series["central-dp"]

        # Errors fall from eps=1 to eps=3 for the noisy-graph algorithms.
        assert naive[0] > naive[-1], key
        assert oner[0] > oner[-1], key
        assert ds[0] > ds[-1], key

        # At every eps: multiple-round beats one-round; central beats all.
        for i in range(len(EPSILONS)):
            assert ds[i] < oner[i], (key, EPSILONS[i])
            assert ds[i] < naive[i], (key, EPSILONS[i])
            assert central[i] < ds[i], (key, EPSILONS[i])

"""Fig. 9 — robustness to query pairs with imbalanced degrees (κ sweep).

Shape assertions (the paper's robustness headline): MultiR-SS and
MultiR-DS-Basic degrade as κ grows; MultiR-DS stays comparatively flat and
wins at the extreme κ on every dataset.
"""

from __future__ import annotations

import math

from benchutil import run_once

from repro.experiments.fig9_imbalance import DEFAULT_KAPPAS, FIG9_DATASETS, run_fig9


def test_fig9_imbalanced_pairs(benchmark, config, emit):
    panels = run_once(
        benchmark,
        run_fig9,
        datasets=FIG9_DATASETS,
        kappas=DEFAULT_KAPPAS,
        epsilon=config.epsilon,
        num_pairs=config.num_pairs,
        max_edges=config.max_edges,
        rng=config.seed,
    )
    emit("fig09_imbalance", "\n\n".join(p.to_text() for p in panels))

    for panel, key in zip(panels, FIG9_DATASETS):
        ss = [v for v in panel.series["multir-ss"] if not math.isnan(v)]
        basic = [v for v in panel.series["multir-ds-basic"] if not math.isnan(v)]
        ds = [v for v in panel.series["multir-ds"] if not math.isnan(v)]
        assert len(ds) >= 2, key

        # Fixed-allocation estimators blow up with the imbalance factor.
        assert ss[-1] > 2 * ss[0], key
        assert basic[-1] > 2 * basic[0], key

        # MultiR-DS wins at the most imbalanced point...
        assert ds[-1] < ss[-1], key
        assert ds[-1] < basic[-1], key
        # ...and stays comparatively flat across the sweep.
        assert ds[-1] < 6 * max(ds[0], 1e-3), key

"""Ablation — shared-round batching vs independent per-pair queries.

When one analyst needs q pairwise counts over a vertex pool, independent
OneR runs charge hub vertices once per pair; honoring a per-vertex total
budget ε forces each run down to ε/(pairs-per-vertex). The batch protocol
(one ε-RR upload per vertex, all pairs post-processed) keeps the full ε.

Shape assertions: at equal per-vertex total budget the batch answers are
far more accurate, and it uploads fewer bytes than the independent runs.
"""

from __future__ import annotations

import numpy as np
from benchutil import run_once

from repro.datasets.cache import load_dataset
from repro.estimators.batch import BatchOneRound
from repro.estimators.oner import OneRoundEstimator
from repro.experiments.report import SeriesPanel
from repro.graph.bipartite import Layer
from repro.graph.sampling import QueryPair
from repro.privacy.rng import spawn_rngs
from repro.protocol.session import ExecutionMode

DATASET = "RM"
POOL = 12  # hub vertices to compare pairwise


def test_ablation_batch_vs_independent(benchmark, config, emit):
    def run():
        graph = load_dataset(DATASET, min(config.max_edges, 60_000))
        degrees = graph.degrees(Layer.UPPER)
        hubs = np.argsort(degrees)[-POOL:]
        pairs = [
            QueryPair(Layer.UPPER, int(hubs[i]), int(hubs[j]))
            for i in range(POOL)
            for j in range(i + 1, POOL)
        ]
        truths = np.array(
            [graph.count_common_neighbors(p.layer, p.a, p.b) for p in pairs]
        )

        batch = BatchOneRound().estimate_pairs(
            graph, Layer.UPPER, pairs, config.epsilon, rng=1
        )
        batch_mae = float(np.abs(batch.values - truths).mean())

        # Independent runs under the same per-vertex total: each vertex
        # joins POOL-1 pairs, so each query may only use eps/(POOL-1).
        per_query_eps = config.epsilon / (POOL - 1)
        estimator = OneRoundEstimator()
        rngs = spawn_rngs(2, len(pairs))
        independent = np.array(
            [
                estimator.estimate(
                    graph, p.layer, p.a, p.b, per_query_eps,
                    rng=rngs[i], mode=ExecutionMode.SKETCH,
                ).value
                for i, p in enumerate(pairs)
            ]
        )
        independent_mae = float(np.abs(independent - truths).mean())
        independent_bytes = sum(
            estimator.estimate(
                graph, p.layer, p.a, p.b, per_query_eps,
                rng=rngs[i], mode=ExecutionMode.SKETCH,
            ).communication_bytes
            for i, p in enumerate(pairs)
        )
        return {
            "batch_mae": batch_mae,
            "independent_mae": independent_mae,
            "batch_bytes": batch.upload_bytes,
            "independent_bytes": independent_bytes,
            "num_pairs": len(pairs),
        }

    out = run_once(benchmark, run)
    panel = SeriesPanel(
        title=(
            f"Ablation — batch vs independent OneR ({DATASET}, "
            f"{out['num_pairs']} pairs, per-vertex eps={config.epsilon:g})"
        ),
        x_label="metric",
        x_values=["mae", "bytes"],
        y_label="value",
    )
    panel.add("batch (shared round)", [out["batch_mae"], float(out["batch_bytes"])])
    panel.add(
        "independent (eps split)",
        [out["independent_mae"], float(out["independent_bytes"])],
    )
    emit("ablation_batch", panel.to_text())

    assert out["batch_mae"] < out["independent_mae"] / 2
    assert out["batch_bytes"] < out["independent_bytes"]

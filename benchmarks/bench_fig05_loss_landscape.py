"""Fig. 5 — analytic L2-loss landscape of the double-source estimator.

Shape assertions: the jointly optimized global minimum sits at or below
every fixed-α curve on both panels; the plain average nearly attains it
for mildly imbalanced degrees (du=5, dw=10) while the low-degree
single-source curve wins under strong imbalance (du=5, dw=100).
"""

from __future__ import annotations

from benchutil import run_once

from repro.experiments.fig5_loss_landscape import run_fig5


def test_fig5_loss_landscape(benchmark, emit):
    panels = run_once(benchmark, run_fig5, num_points=21)
    emit("fig05_loss_landscape", "\n\n".join(p.to_text() for p in panels))

    balanced, imbalanced = panels
    assert balanced.deg_w == 10
    assert imbalanced.deg_w == 100

    for panel in panels:
        for label, values in panel.panel.series.items():
            if label == "global minimum":
                continue
            assert panel.global_minimum <= min(values) + 1e-9

    # du=5, dw=10: averaging is near-optimal (within 15% of the optimum).
    avg_best = min(balanced.panel.series["alpha=0.5 (average)"])
    assert avg_best <= balanced.global_minimum * 1.15

    # du=5, dw=100: the light single-source curve beats the average and
    # comes close to the optimum, as in the paper's right panel.
    fu_best = min(imbalanced.panel.series["alpha=1 (f_u)"])
    avg_best = min(imbalanced.panel.series["alpha=0.5 (average)"])
    assert fu_best < avg_best
    assert fu_best <= imbalanced.global_minimum * 1.25

    # The optimizer leans toward the low-degree vertex under imbalance.
    assert imbalanced.optimal_alpha > 0.5

"""Table 2 — dataset statistics (published vs synthesized analogues).

Shape assertions: all 15 datasets build; un-scaled datasets match the
published |U|, |L|, |E| exactly; scaled datasets preserve density.
"""

from __future__ import annotations

from benchutil import run_once

from repro.experiments.table2_datasets import run_table2, table2_text


def test_table2_datasets(benchmark, config, emit):
    rows = run_once(benchmark, run_table2, max_edges=config.max_edges)
    emit("table2_datasets", table2_text(rows))

    assert len(rows) == 15
    for row in rows:
        assert row.synth_edges > 0
        if row.vertex_fraction == 1.0:
            assert row.synth_edges == row.paper_edges
            assert row.synth_upper == row.paper_upper
            assert row.synth_lower == row.paper_lower
        else:
            paper_density = row.paper_edges / (row.paper_upper * row.paper_lower)
            synth_density = row.synth_edges / (row.synth_upper * row.synth_lower)
            assert abs(synth_density - paper_density) / paper_density < 0.2
        # Heavy-tailed degree structure survived synthesis.
        mean_upper = row.synth_edges / row.synth_upper
        assert row.synth_max_degree_upper > 2 * mean_upper

"""Multi-tenant serving under a cache memory budget.

Two tenants share one hot vertex pool on a materialize-path graph — the
shared-report scenario the multi-tenant layer exists for. The benchmark
drives the same skewed traffic through three cache configurations:

* ``unbounded`` — the PR-2 baseline: every noisy view stays resident
  until rotation;
* ``bounded`` — an LRU byte budget of roughly a third of the unbounded
  working set: memory stays under the cap while evicted views are
  reconstructed deterministically (privacy-free) on re-touch;
* ``bounded+warm`` — the same with an epoch rotation mid-run and warm
  pre-drawing of the hottest vertices.

Reported per configuration: peak resident bytes, hit rate,
evictions/recharges, throughput, and the tenant ledger — which must show
perfect isolation (tenant budgets only ever move on their own misses)
and per-tenant spends summing to the accountant's true charges.

Run directly (``python benchmarks/bench_multitenant.py``) or via pytest
(``pytest benchmarks/bench_multitenant.py -s``). ``REPRO_BENCH_QUICK=1``
shrinks the workload to a seconds-long smoke run for CI.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np
import pytest

from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.protocol.session import ExecutionMode
from repro.serving import QueryServer, TenantRegistry, simulate_clients

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
if QUICK:
    N_UPPER, N_LOWER, N_EDGES = 300, 1_000, 6_000
    NUM_CLIENTS, QUERIES_PER_CLIENT, HOT_POOL = 10, 6, 40
else:
    N_UPPER, N_LOWER, N_EDGES = 2000, 10_000, 60_000
    NUM_CLIENTS, QUERIES_PER_CLIENT, HOT_POOL = 40, 10, 120
EPSILON = 2.0
TENANT_BUDGET = 400.0  # ample: isolation, not refusal, is under test here


def _run_config(
    graph, pool, *, cache_bytes=None, rotate_mid_run=False, warm=0
) -> dict:
    registry = TenantRegistry()
    registry.register("alice", TENANT_BUDGET)
    registry.register("bob", TENANT_BUDGET)

    async def drive():
        async with QueryServer(
            graph, Layer.UPPER, EPSILON,
            mode=ExecutionMode.MATERIALIZE,
            cache_bytes=cache_bytes,
            warm_vertices=warm,
            tenants=registry,
            rng=7,
        ) as server:
            peak = 0

            async def watch_peak():
                nonlocal peak
                while True:
                    peak = max(peak, server.cache.nbytes())
                    await asyncio.sleep(0)

            watcher = asyncio.create_task(watch_peak())
            start = time.perf_counter()
            result = await simulate_clients(
                server, NUM_CLIENTS, QUERIES_PER_CLIENT, rng=11,
                replays=1, pool=pool,
            )
            if rotate_mid_run:
                server.rotate_epoch()
            replay = await simulate_clients(
                server, NUM_CLIENTS, QUERIES_PER_CLIENT, rng=11,
                replays=1, pool=pool,
            )
            elapsed = time.perf_counter() - start
            watcher.cancel()
            peak = max(peak, server.cache.nbytes())
            served = len(result.estimates) + len(replay.estimates)
            alice, bob = registry.get("alice"), registry.get("bob")
            charged_vertices = {
                v
                for v in range(graph.layer_size(Layer.UPPER))
                if server.accountant.lifetime_spent(Layer.UPPER, v) > 0
            }
            true_spend = sum(
                server.accountant.lifetime_spent(Layer.UPPER, v)
                for v in charged_vertices
            )
            return {
                "served": served,
                "throughput": served / elapsed,
                "peak_bytes": peak,
                "resident_bytes": server.cache.nbytes(),
                "hit_rate": server.cache.stats.hit_rate(),
                "evictions": server.cache.stats.evictions,
                "recharges": server.cache.stats.recharges,
                "warmed": server.stats.warmed_vertices,
                "alice_spent": alice.budget.spent,
                "bob_spent": bob.budget.spent,
                "metered_total": alice.stats.epsilon_charged
                + bob.stats.epsilon_charged,
                "true_spend": true_spend,
                "max_vertex_spend": server.accountant.max_lifetime_spent(),
            }

    return asyncio.run(drive())


def run_multitenant_comparison() -> tuple[str, dict]:
    graph = random_bipartite(N_UPPER, N_LOWER, N_EDGES, rng=20260727)
    pool = np.flatnonzero(graph.degrees(Layer.UPPER) > 0)[:HOT_POOL]

    unbounded = _run_config(graph, pool)
    byte_budget = max(int(unbounded["resident_bytes"] / 3), 1)
    bounded = _run_config(graph, pool, cache_bytes=byte_budget)
    warm = _run_config(
        graph, pool, cache_bytes=byte_budget, rotate_mid_run=True, warm=40
    )

    rows = {
        "byte_budget": byte_budget,
        "unbounded": unbounded,
        "bounded": bounded,
        "bounded_warm": warm,
    }
    header = (
        f"{'configuration':<16} {'peak KiB':>9} {'hit rate':>9} "
        f"{'evict':>6} {'recharge':>9} {'q/s':>9}"
    )
    fmt = (
        "{name:<16} {peak:>9.0f} {hit:>8.1%} {ev:>6d} {re:>9d} {qs:>9,.0f}"
    )
    lines = [
        f"two tenants x {NUM_CLIENTS // 2} clients each, "
        f"{QUERIES_PER_CLIENT} queries + full second pass, "
        f"{HOT_POOL}-vertex hot pool on {N_UPPER} x {N_LOWER} "
        f"({N_EDGES} edges), epsilon={EPSILON}",
        f"cache byte budget for bounded runs: {byte_budget:,} B "
        f"(~1/3 of the unbounded working set)",
        "",
        header,
    ]
    for name, r in (
        ("unbounded", unbounded),
        ("bounded", bounded),
        ("bounded+warm", warm),
    ):
        lines.append(
            fmt.format(
                name=name, peak=r["peak_bytes"] / 1024, hit=r["hit_rate"],
                ev=r["evictions"], re=r["recharges"], qs=r["throughput"],
            )
        )
    lines += [
        "",
        f"tenant isolation (bounded): alice spent "
        f"{bounded['alice_spent']:.1f} eps, bob {bounded['bob_spent']:.1f} eps; "
        f"metered total {bounded['metered_total']:.1f} = "
        f"accountant total {bounded['true_spend']:.1f}",
        f"max per-vertex spend stays one epsilon under eviction: "
        f"{bounded['max_vertex_spend']:.3f}",
    ]
    return "\n".join(lines), rows


def test_multitenant_bounded_cache(emit):
    text, rows = run_multitenant_comparison()
    emit("multitenant", text)

    bounded = rows["bounded"]
    # The byte budget actually bounds resident memory (peak may include
    # one in-flight tick's working set on top of the cap).
    assert bounded["resident_bytes"] <= rows["byte_budget"]
    assert bounded["peak_bytes"] < rows["unbounded"]["peak_bytes"]
    assert bounded["evictions"] > 0
    # Hot-pool traffic still hits the cache meaningfully under eviction.
    assert bounded["hit_rate"] >= 0.20
    # Analyst-side metering equals the privacy-side truth, and no tenant
    # paid for the other: each spend is itself bounded by the total.
    assert bounded["metered_total"] == pytest.approx(bounded["true_spend"])
    assert (
        bounded["alice_spent"] + bounded["bob_spent"]
        == pytest.approx(bounded["true_spend"])
    )
    # Eviction/redraw cycles never double-charge a vertex within an epoch.
    assert bounded["max_vertex_spend"] <= EPSILON + 1e-9


if __name__ == "__main__":
    text, _ = run_multitenant_comparison()
    print(text)

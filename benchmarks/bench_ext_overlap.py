"""Extension — MAE conditioned on the true overlap size (beyond the paper).

Shape assertions: the unbiased estimators' absolute errors stay within a
small factor across overlap strata (variance depends on degrees, not C2),
and CentralDP remains the lower envelope in every stratum.
"""

from __future__ import annotations

from benchutil import run_once

from repro.experiments.ext_overlap import run_ext_overlap


def test_ext_overlap_strata(benchmark, config, emit):
    panel = run_once(
        benchmark,
        run_ext_overlap,
        dataset="RM",
        epsilon=config.epsilon,
        num_pairs=max(20, config.num_pairs // 2),
        max_edges=config.max_edges,
        rng=config.seed,
    )
    emit("ext_overlap", panel.to_text())

    for name in ("oner", "multir-ss", "multir-ds"):
        values = panel.series[name]
        assert max(values) < 6 * max(min(values), 1e-3), name
    for i in range(len(panel.x_values)):
        assert panel.series["central-dp"][i] < panel.series["multir-ds"][i] * 2
        assert panel.series["multir-ds"][i] < panel.series["oner"][i]

"""Streaming ingest over the wire: delta pushes vs graph re-ship.

The distributed streaming contract this benchmark pins: when a serving
cache on a socket cluster rotates a mutation batch in, the workers are
carried to the new snapshot by MUTATE delta frames — sized by the *dirty
set*, not the graph — instead of re-shipping the full GRAPH frame. On a
realistic churn profile (~1% of the upper layer dirtied per rotation)
the delta frames must beat the re-ship by at least
:data:`DELTA_FLOOR` (10x) in bytes on the wire, the traffic win that
makes streaming to remote workers pay. The ingest ledger also has to
show zero divergences (every push landed; nobody fell back to a full
install after the seed) — a delta path that silently re-ships graphs
would still serve correct bits, but would erase exactly the win this
benchmark exists to measure.

Run directly (``python benchmarks/bench_streaming_cluster.py``) or via
pytest (``pytest benchmarks/bench_streaming_cluster.py -s``).
``REPRO_BENCH_QUICK=1`` shrinks the workload to a seconds-long smoke run.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine.sharded import ShardedRunner
from repro.engine.transport import SocketTransport
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.serving import NoisyViewCache

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
if QUICK:
    N_UPPER, N_LOWER, N_EDGES, ROUNDS = 2_000, 400, 12_000, 3
else:
    N_UPPER, N_LOWER, N_EDGES, ROUNDS = 8_000, 800, 60_000, 5
EPSILON = 2.0
WORKERS = 2
DIRTY_FRAC = 0.01  # share of the upper layer churned per rotation
# The acceptance floor: delta frames must be at least this many times
# cheaper than re-shipping the GRAPH frame for every rotation.
DELTA_FLOOR = 10.0
SRC = Path(__file__).resolve().parents[1] / "src"


def launch_worker():
    """Start one loopback worker; return (process, "host:port")."""
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.engine.worker",
            "--listen",
            "127.0.0.1:0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("LISTENING "):
        proc.kill()
        raise RuntimeError(f"worker never announced itself: {line!r}")
    return proc, line.split(" ", 1)[1]


def _churn_batch(graph, rng, count):
    """Toggle one edge on each of ``count`` distinct upper vertices."""
    inserts, deletes = [], []
    for v in rng.choice(N_UPPER, size=count, replace=False):
        l = int(rng.integers(N_LOWER))
        (deletes if graph.has_edge(int(v), l) else inserts).append(
            (int(v), l)
        )
    return inserts, deletes


def run_streaming_cluster_bench() -> tuple[str, dict]:
    graph = random_bipartite(N_UPPER, N_LOWER, N_EDGES, rng=20260808)
    verts = np.arange(N_UPPER, dtype=np.int64)
    rng = np.random.default_rng(7)
    dirty_target = max(2, int(N_UPPER * DIRTY_FRAC))

    procs = [launch_worker() for _ in range(WORKERS)]
    try:
        transport = SocketTransport([addr for _, addr in procs])
        runner = ShardedRunner(
            graph, Layer.UPPER, max_workers=WORKERS, transport=transport
        )
        cache = NoisyViewCache(
            graph, Layer.UPPER, EPSILON,
            rng=np.random.default_rng(20260808), shard_runner=runner,
        )
        try:
            start = time.perf_counter()
            cache.materialize_fresh(verts)
            t_seed = time.perf_counter() - start

            round_times = []
            for _ in range(ROUNDS):
                inserts, deletes = _churn_batch(
                    cache.graph, rng, dirty_target
                )
                cache.mutate(inserts=inserts, deletes=deletes)
                start = time.perf_counter()
                cache.rotate()
                assert cache.last_rotation["incremental"]
                missing = np.array(
                    [v for v in range(N_UPPER) if not cache.has_view(v)],
                    dtype=np.int64,
                )
                cache.materialize_fresh(missing)
                round_times.append(time.perf_counter() - start)
            ingest = transport.describe()["ingest"]
        finally:
            runner.close()
    finally:
        for proc, _ in procs:
            proc.terminate()
        for proc, _ in procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()

    reship = ingest["delta_bytes"] + ingest["delta_saved_bytes"]
    factor = reship / max(1, ingest["delta_bytes"])
    rows = {
        "rounds": ROUNDS,
        "dirty_per_round": dirty_target,
        "seed_s": t_seed,
        "round_s": float(np.median(round_times)),
        "delta_pushes": ingest["delta_pushes"],
        "delta_bytes": ingest["delta_bytes"],
        "delta_saved_bytes": ingest["delta_saved_bytes"],
        "graph_installs": ingest["graph_installs"],
        "graph_bytes": ingest["graph_bytes"],
        "diverged": ingest["diverged"],
        "delta_factor": factor,
    }
    lines = [
        f"{ROUNDS} streaming rotations, {dirty_target} dirty vertices "
        f"(~{100 * DIRTY_FRAC:.0f}%) each, on {N_UPPER} x {N_LOWER} "
        f"({N_EDGES} edges) over {WORKERS} loopback workers, "
        f"epsilon={EPSILON}" + (" [QUICK]" if QUICK else ""),
        "",
        f"seed draw (full install + layer):   {t_seed:>8.3f} s",
        f"median incremental round:           {rows['round_s']:>8.3f} s",
        "",
        f"{'ingest path':<26} {'frames':>7} {'bytes':>14}",
        f"{'full GRAPH installs (seed)':<26} "
        f"{ingest['graph_installs']:>7} {ingest['graph_bytes']:>14,}",
        f"{'MUTATE delta pushes':<26} "
        f"{ingest['delta_pushes']:>7} {ingest['delta_bytes']:>14,}",
        "",
        f"re-shipping the graph instead would have cost {reship:,} bytes "
        f"— deltas are {factor:.0f}x cheaper (floor {DELTA_FLOOR:.0f}x), "
        f"{ingest['diverged']} divergences",
    ]
    return "\n".join(lines), rows


def test_streaming_cluster_bench(emit):
    text, rows = run_streaming_cluster_bench()
    emit("streaming_cluster", text)
    # Every rotation reached both workers as a delta; nobody needed a
    # second full install and no push was refused.
    assert rows["delta_pushes"] >= rows["rounds"]
    assert rows["graph_installs"] == WORKERS
    assert rows["diverged"] == 0
    # The headline: delta push beats graph re-ship on ~1%-dirty churn.
    assert rows["delta_factor"] >= DELTA_FLOOR, (
        f"delta frames only {rows['delta_factor']:.1f}x cheaper than "
        f"re-shipping the graph (floor {DELTA_FLOOR:.0f}x)"
    )


if __name__ == "__main__":
    text, _ = run_streaming_cluster_bench()
    print(text)

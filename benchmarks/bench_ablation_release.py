"""Ablation — per-query protocols vs one-shot noisy-graph release.

Not a paper figure, but the quantitative version of its §6 discussion:
general-purpose noisy-graph release amortizes communication over unlimited
queries yet pays the full candidate-pool error on each, while the paper's
per-query protocols pay per query and win on accuracy.

Shape assertions: MultiR-DS is far more accurate than release-based
answers at the same per-vertex budget; release communication is constant
in the query count while per-query communication grows linearly (so the
release wins on bytes once enough queries are asked).
"""

from __future__ import annotations

import numpy as np
from benchutil import run_once

from repro.datasets.cache import load_dataset
from repro.estimators.registry import get_estimator
from repro.experiments.report import SeriesPanel
from repro.graph.bipartite import Layer
from repro.graph.sampling import sample_query_pairs
from repro.privacy.rng import spawn_rngs
from repro.protocol.release import release_noisy_graph, released_common_neighbors
from repro.protocol.session import ExecutionMode

DATASET = "RM"


def test_ablation_release_vs_queries(benchmark, config, emit):
    def run():
        graph = load_dataset(DATASET, min(config.max_edges, 60_000))
        pairs = sample_query_pairs(graph, Layer.UPPER, config.num_pairs, rng=3)
        truths = np.array(
            [graph.count_common_neighbors(p.layer, p.a, p.b) for p in pairs]
        )

        release = release_noisy_graph(graph, config.epsilon, rng=4)
        release_values = np.array(
            [
                released_common_neighbors(release, p.layer, p.a, p.b)
                for p in pairs
            ]
        )

        estimator = get_estimator("multir-ds")
        rngs = spawn_rngs(5, len(pairs))
        ds_values = np.empty(len(pairs))
        ds_bytes = 0
        for i, p in enumerate(pairs):
            result = estimator.estimate(
                graph, p.layer, p.a, p.b, config.epsilon,
                rng=rngs[i], mode=ExecutionMode.SKETCH,
            )
            ds_values[i] = result.value
            ds_bytes += result.communication_bytes

        return {
            "release_mae": float(np.abs(release_values - truths).mean()),
            "ds_mae": float(np.abs(ds_values - truths).mean()),
            "release_bytes": release.upload_bytes,
            "ds_bytes_total": ds_bytes,
            "num_queries": len(pairs),
        }

    out = run_once(benchmark, run)

    panel = SeriesPanel(
        title=f"Ablation — release vs per-query ({DATASET}, eps={config.epsilon:g}, "
        f"{out['num_queries']} queries)",
        x_label="metric",
        x_values=["mae", "total bytes"],
        y_label="value",
    )
    panel.add("noisy-graph release", [out["release_mae"], float(out["release_bytes"])])
    panel.add("multir-ds per query", [out["ds_mae"], float(out["ds_bytes_total"])])
    emit("ablation_release", panel.to_text())

    # Accuracy: the paper's protocol dominates at equal per-vertex budget.
    assert out["ds_mae"] < out["release_mae"] / 2

    # Communication: the release is a one-off; per-query cost scales with
    # the workload, so for a large enough workload the release is cheaper
    # per query.
    per_query_ds = out["ds_bytes_total"] / out["num_queries"]
    breakeven = out["release_bytes"] / per_query_ds
    assert breakeven < 10_000  # the release amortizes within a sane workload

"""Micro-benchmarks of the library's hot paths (classic pytest-benchmark).

Not a paper figure — these track the substrate costs that every experiment
is built from: adjacency intersection, randomized response (dense and
sparse), the end-to-end estimators in both execution modes, and the budget
optimizer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.optimizer import optimize_double_source
from repro.estimators.registry import get_estimator
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.privacy.mechanisms import RandomizedResponse
from repro.protocol.session import ExecutionMode


@pytest.fixture(scope="module")
def graph():
    return random_bipartite(2_000, 10_000, 120_000, rng=5)


def test_common_neighbor_query(benchmark, graph):
    benchmark(graph.count_common_neighbors, Layer.UPPER, 10, 20)


def test_rr_dense_row(benchmark):
    rr = RandomizedResponse(2.0)
    row = np.zeros(100_000, dtype=np.int8)
    row[np.arange(0, 100_000, 97)] = 1
    rng = np.random.default_rng(1)
    benchmark(rr.perturb_bits, row, rng)


def test_rr_sparse_list(benchmark):
    rr = RandomizedResponse(2.0)
    neighbors = np.arange(0, 100_000, 97, dtype=np.int64)
    rng = np.random.default_rng(2)
    benchmark(rr.perturb_neighbor_list, neighbors, 100_000, rng)


@pytest.mark.parametrize("name", ["naive", "oner", "multir-ss", "multir-ds"])
def test_estimator_sketch_mode(benchmark, graph, name):
    estimator = get_estimator(name)
    rng = np.random.default_rng(3)
    benchmark(
        estimator.estimate, graph, Layer.UPPER, 3, 9, 2.0,
        rng=rng, mode=ExecutionMode.SKETCH,
    )


@pytest.mark.parametrize("name", ["oner", "multir-ds"])
def test_estimator_materialize_mode(benchmark, graph, name):
    estimator = get_estimator(name)
    rng = np.random.default_rng(4)
    benchmark(
        estimator.estimate, graph, Layer.UPPER, 3, 9, 2.0,
        rng=rng, mode=ExecutionMode.MATERIALIZE,
    )


def test_budget_optimizer(benchmark):
    benchmark(optimize_double_source, 2.0, 37.0, 412.0, 0.1)

"""Table 3 — closed-form expected L2 losses verified empirically.

Shape assertions: empirical L2 matches the analytic value for every
algorithm with a fixed allocation; Naive is biased upward, everything else
unbiased; the loss hierarchy CentralDP < MultiR < OneR holds.
"""

from __future__ import annotations

from benchutil import run_once

from repro.experiments.table3_summary import run_table3


def test_table3_summary(benchmark, config, emit):
    result = run_once(
        benchmark, run_table3, epsilon=config.epsilon,
        trials=max(config.trials * 5, 2000), rng=config.seed,
    )
    emit("table3_summary", result.to_text())

    rows = {r.algorithm: r for r in result.rows}

    # Analytic vs empirical agreement for deterministic allocations.
    for name in ("naive", "oner", "multir-ss", "multir-ds-basic", "multir-ds-star", "central-dp"):
        row = rows[name]
        assert row.empirical_l2 == row.analytic_l2 or (
            abs(row.empirical_l2 - row.analytic_l2) / max(row.analytic_l2, 1e-9) < 0.35
        ), name

    # Naive biased upward; unbiased algorithms close to the truth.
    assert rows["naive"].empirical_mean > result.true_count
    for name in ("oner", "multir-ss", "multir-ds", "central-dp"):
        spread = max(rows[name].analytic_l2, 1.0) ** 0.5
        assert abs(rows[name].empirical_mean - result.true_count) < spread

    # Loss hierarchy from the paper's summary table.
    assert rows["central-dp"].empirical_l2 < rows["multir-ds-star"].empirical_l2
    assert rows["multir-ds-star"].empirical_l2 <= rows["multir-ss"].empirical_l2 * 1.2

"""Micro-benchmarks of the graph substrate (construction, I/O, motifs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.bipartite import BipartiteGraph, Layer
from repro.graph.generators import (
    chung_lu_bipartite,
    power_law_degrees,
    random_bipartite,
)
from repro.graph.io import load_npz, save_npz
from repro.graph.motifs import count_butterflies
from repro.graph.sampling import sample_query_pairs, sample_vertex_fraction
from repro.graph.stats import summarize_graph


@pytest.fixture(scope="module")
def edges():
    return random_bipartite(5_000, 8_000, 200_000, rng=3).edges


@pytest.fixture(scope="module")
def graph(edges):
    return BipartiteGraph(5_000, 8_000, edges)


def test_graph_construction(benchmark, edges):
    benchmark(BipartiteGraph, 5_000, 8_000, edges)


def test_generator_gnm(benchmark):
    benchmark(random_bipartite, 3_000, 4_000, 100_000, 7)


def test_generator_chung_lu(benchmark):
    w_u = power_law_degrees(3_000, rng=1).astype(float)
    w_l = power_law_degrees(4_000, rng=2).astype(float)
    benchmark(chung_lu_bipartite, w_u, w_l, 60_000, 3)


def test_npz_round_trip(benchmark, graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "g.npz"

    def round_trip():
        save_npz(graph, path)
        return load_npz(path)

    benchmark(round_trip)


def test_induced_subgraph(benchmark, graph):
    rng = np.random.default_rng(4)
    upper = rng.choice(graph.num_upper, 2_500, replace=False)
    lower = rng.choice(graph.num_lower, 4_000, replace=False)
    benchmark(graph.induced_subgraph, upper, lower)


def test_vertex_fraction_sampling(benchmark, graph):
    benchmark(sample_vertex_fraction, graph, 0.5, 5)


def test_pair_sampling(benchmark, graph):
    benchmark(sample_query_pairs, graph, Layer.UPPER, 100, 6)


def test_summary(benchmark, graph):
    benchmark(summarize_graph, graph)


def test_butterfly_counting(benchmark):
    small = random_bipartite(400, 300, 6_000, rng=8)
    benchmark(count_butterflies, small)

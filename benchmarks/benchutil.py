"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The figure harnesses are deterministic given their seed, so a single
    round both times the full reproduction and returns its result for the
    shape assertions.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

"""Sketch views at scale: memory budget, throughput, error, determinism.

The sublinear-memory claim the sketch subsystem makes is concrete: a
million-vertex workload answered end-to-end in sketch-view mode must
keep every released view within a fixed per-vertex byte budget (64 bytes
here — a 512-bit blipped Bloom filter), while staying

* **competitive in throughput** — a warm sketch-view serving tick
  (views resident, pure gather + debias) must answer pairs at least as
  fast as the per-pair sketch-mode estimator path those views replace.
  The one-time keyed release cost (the price of bit-identical redraw
  and shard invariance) is reported alongside;
* **within the documented closed-form error bound** — each pair's
  absolute error against the exact count is checked against six standard
  deviations of the family's conservative variance, and
* **bit-identical** across 1/2/4-way sharding of the engine and across
  bounded-cache eviction + keyed redraw.

Run directly (``python benchmarks/bench_sketch_views.py``) or via pytest
(``pytest benchmarks/bench_sketch_views.py -s``). ``REPRO_BENCH_QUICK=1``
shrinks the graph from 1M x 1M to 50k x 50k for the CI smoke lane; every
assertion still runs, only the perf ratio is relaxed (tiny workloads
time the fixed overheads, not the paths).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.engine.core import BatchQueryEngine
from repro.engine.sketches import SketchConfig
from repro.estimators.oner import OneRoundEstimator
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.graph.sampling import QueryPair
from repro.protocol.session import ExecutionMode
from repro.serving.cache import NoisyViewCache

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
if QUICK:
    N_VERTS, N_EDGES, N_PAIRS, CACHE_VERTS = 50_000, 500_000, 2_000, 2_000
else:
    N_VERTS, N_EDGES, N_PAIRS, CACHE_VERTS = 1_000_000, 8_000_000, 10_000, 20_000
EPSILON = 2.0
BUDGET_BYTES = 64  # the sublinear-memory target per released view
CONFIG = SketchConfig.for_budget("bloom", BUDGET_BYTES)  # 512 blipped bits
SEED = 20260808
PER_PAIR_SAMPLE = 500  # pairs timed on the per-pair baseline (extrapolated)
# Quick mode times fixed overheads on a tiny workload; full scale must
# genuinely keep up with the per-pair path it replaces.
MIN_THROUGHPUT_RATIO = 0.3 if QUICK else 1.0
ERROR_SIGMAS = 6.0
MIN_WITHIN_BOUND = 0.99


def _workload(rng):
    graph = random_bipartite(N_VERTS, N_VERTS, N_EDGES, rng=rng)
    ia = rng.integers(0, N_VERTS, size=N_PAIRS)
    ib = (ia + 1 + rng.integers(0, N_VERTS - 1, size=N_PAIRS)) % N_VERTS
    pairs = [QueryPair(Layer.UPPER, int(a), int(b)) for a, b in zip(ia, ib)]
    return graph, pairs


def run_sketch_views_bench() -> tuple[str, dict]:
    rng = np.random.default_rng(SEED)
    graph, pairs = _workload(rng)

    # --- cold end-to-end sketch-view batch under the byte budget ------
    engine = BatchQueryEngine(mode=ExecutionMode.SKETCH_VIEW, sketch=CONFIG)
    start = time.perf_counter()
    result = engine.estimate_pairs(
        graph, Layer.UPPER, pairs, EPSILON, rng=np.random.default_rng(1)
    )
    t_cold = time.perf_counter() - start
    k = result.num_query_vertices
    bytes_per_vertex = result.upload_bytes / k

    # --- exact error against the closed-form bound --------------------
    exact = np.array(
        [graph.count_common_neighbors(Layer.UPPER, a, b) for _, a, b in pairs],
        dtype=np.float64,
    )
    sigma = np.sqrt(np.asarray(result.details["sketch_variance"]))
    within = np.abs(result.values - exact) <= ERROR_SIGMAS * sigma + 1.0
    within_frac = float(within.mean())
    mae = float(np.abs(result.values - exact).mean())

    # --- warm serving tick vs the per-pair sketch path ----------------
    # The per-pair baseline: one OneRoundEstimator call per pair in
    # sketch mode — the pre-engine way to answer a workload, redrawing
    # noise on every query. Timed on a sample and extrapolated.
    per_pair = OneRoundEstimator()
    baseline_rng = np.random.default_rng(2)
    start = time.perf_counter()
    for _, a, b in pairs[:PER_PAIR_SAMPLE]:
        per_pair.estimate(
            graph, Layer.UPPER, a, b, EPSILON,
            rng=baseline_rng, mode=ExecutionMode.SKETCH,
        )
    t_per_pair = (time.perf_counter() - start) * (N_PAIRS / PER_PAIR_SAMPLE)

    cache = NoisyViewCache(
        graph, Layer.UPPER, EPSILON,
        mode=ExecutionMode.SKETCH_VIEW, sketch=CONFIG,
        rng=np.random.default_rng(3),
    )
    serve = BatchQueryEngine()
    warm_rng = np.random.default_rng(4)
    first = serve.estimate_pairs(
        graph, Layer.UPPER, pairs, rng=warm_rng, cache=cache
    )
    start = time.perf_counter()
    second = serve.estimate_pairs(
        graph, Layer.UPPER, pairs, rng=warm_rng, cache=cache
    )
    t_warm = time.perf_counter() - start
    assert second.details["cache"]["charged_vertices"] == 0
    np.testing.assert_array_equal(first.values, second.values)
    ratio = t_per_pair / t_warm if t_warm > 0 else float("inf")

    # --- bit-identity across 1/2/4-way sharding -----------------------
    for shards in (2, 4):
        with BatchQueryEngine(
            mode=ExecutionMode.SKETCH_VIEW, sketch=CONFIG, shards=shards
        ) as sharded:
            again = sharded.estimate_pairs(
                graph, Layer.UPPER, pairs, EPSILON, rng=np.random.default_rng(1)
            )
        np.testing.assert_array_equal(result.values, again.values)

    # --- bounded-cache eviction + keyed redraw ------------------------
    bounded = NoisyViewCache(
        graph, Layer.UPPER, EPSILON,
        mode=ExecutionMode.SKETCH_VIEW, sketch=CONFIG,
        max_bytes=(CACHE_VERTS // 2) * CONFIG.bytes_per_vertex,
        rng=np.random.default_rng(5),
    )
    cached_vertices = np.arange(CACHE_VERTS, dtype=np.int64)
    bounded.sketch_view_fresh(cached_vertices)
    reference = bounded.gather_sketch_views(cached_vertices).copy()
    evicted = bounded.evict_to_budget()
    bounded.sketch_view_fresh(cached_vertices)  # deterministic redraw
    np.testing.assert_array_equal(
        reference, bounded.gather_sketch_views(cached_vertices)
    )

    rows = {
        "vertices": N_VERTS,
        "edges": N_EDGES,
        "pairs": N_PAIRS,
        "workload_vertices": k,
        "bytes_per_vertex": bytes_per_vertex,
        "budget_bytes": BUDGET_BYTES,
        "t_cold": t_cold,
        "t_warm": t_warm,
        "t_per_pair": t_per_pair,
        "throughput_ratio": ratio,
        "warm_pairs_per_s": N_PAIRS / t_warm,
        "mae": mae,
        "within_bound_frac": within_frac,
        "cache_evicted": evicted,
    }
    lines = [
        f"{N_PAIRS} pairs on {N_VERTS:,} x {N_VERTS:,} ({N_EDGES:,} edges), "
        f"epsilon={EPSILON}, bloom m={CONFIG.m}"
        + (" [QUICK]" if QUICK else ""),
        "",
        f"view budget    : {bytes_per_vertex:.1f} bytes/vertex "
        f"(budget {BUDGET_BYTES})",
        f"cold release   : {t_cold:.3f}s "
        f"({N_PAIRS / t_cold:,.0f} pairs/s, keyed draw included)",
        f"warm tick      : {t_warm:.3f}s ({N_PAIRS / t_warm:,.0f} pairs/s)",
        f"per-pair path  : {t_per_pair:.3f}s extrapolated "
        f"({N_PAIRS / t_per_pair:,.0f} pairs/s; warm tick is {ratio:.1f}x)",
        f"error          : MAE {mae:.2f}; {within_frac:.1%} of pairs within "
        f"{ERROR_SIGMAS:.0f} sigma of the closed-form bound",
        f"determinism    : bit-identical at 1/2/4 shards; "
        f"{evicted} evicted views redrawn bit-identically",
    ]
    return "\n".join(lines), rows


def test_sketch_views_bench(emit):
    text, rows = run_sketch_views_bench()
    emit("sketch_views", text)
    assert rows["bytes_per_vertex"] <= rows["budget_bytes"], (
        f"released views average {rows['bytes_per_vertex']:.1f} bytes/vertex, "
        f"over the {rows['budget_bytes']}-byte budget"
    )
    assert rows["within_bound_frac"] >= MIN_WITHIN_BOUND, (
        f"only {rows['within_bound_frac']:.1%} of pairs landed within "
        f"{ERROR_SIGMAS:.0f} sigma of the closed-form variance"
    )
    assert rows["throughput_ratio"] >= MIN_THROUGHPUT_RATIO, (
        f"warm sketch-view tick is {rows['throughput_ratio']:.2f}x the "
        f"per-pair sketch path (floor {MIN_THROUGHPUT_RATIO}x)"
    )
    assert rows["cache_evicted"] > 0, "cache bound never forced an eviction"


if __name__ == "__main__":
    text, _ = run_sketch_views_bench()
    print(text)

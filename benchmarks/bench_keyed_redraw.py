"""Bounded-cache redraw: vectorized keyed block vs. the per-vertex loop.

PR 3's bounded :class:`NoisyViewCache` made eviction privacy-free with
deterministic per-``(epoch, vertex)`` draws, but paid for it with a
per-vertex Python loop inside ``materialize_fresh``: one fresh
``np.random.default_rng([entropy, epoch, vertex])`` plus a one-vertex
bulk-RR call per miss. The keyed Philox contract replaces that with one
vectorized pass over the whole miss block
(:func:`~repro.engine.bulkrr.keyed_bulk_randomized_response`).

All paths are timed at the ``materialize_fresh`` level — draw *and*
store — on one >= 10k-vertex miss burst (the post-rotation stampede /
cold-cache worst case):

* ``keyed block``  — the new bounded ``materialize_fresh`` (one
  vectorized keyed pass);
* ``unbounded``    — the shared-rng bulk-RR ``materialize_fresh``, the
  speed-of-light reference the keyed path must stay within ~2x of;
* ``pr3 loop``     — PR 3's bounded loop, reproduced faithfully (seeded
  SeedSequence rng per vertex + PR 3's ``bulk_randomized_response``
  pinned verbatim + per-row store);
* ``solo keyed``   — the new contract drawn one vertex at a time (what
  eviction redraws cost if they miss a batch).

The block draw must be >= 5x faster than the per-vertex loop and within
~2x of the unbounded pass — and bit-identical to its own solo redraws,
which is asserted on sampled vertices while benchmarking.

Run directly (``python benchmarks/bench_keyed_redraw.py``) or via pytest
(``pytest benchmarks/bench_keyed_redraw.py -s``). ``REPRO_BENCH_QUICK=1``
shrinks the workload to a seconds-long smoke run (perf assertions are
skipped: a tiny burst is all fixed overhead).
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict

import numpy as np

from repro.engine.bulkrr import bernoulli_hits, gather_rows, lengths_to_indptr
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.privacy.mechanisms import RandomizedResponse
from repro.protocol.session import ExecutionMode
from repro.serving.cache import NoisyViewCache

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
if QUICK:
    N_UPPER, N_LOWER, N_EDGES, BURST, LOOP_N, REPEATS = 400, 200, 2_400, 300, 300, 1
else:
    N_UPPER, N_LOWER, N_EDGES, BURST, LOOP_N, REPEATS = (
        12_000, 1_000, 120_000, 10_000, 1_000, 3,
    )
EPSILON = 2.0
CACHE_SEED = 5  # fixes the caches' entropy so every path keys identically


def _pr3_bulk_rr(graph, layer, vertices, epsilon, rng):
    """PR 3's ``bulk_randomized_response``, pinned verbatim as the loop
    baseline (its per-position rank searchsorted and two-sided merge were
    since optimized; the loop must be measured as it actually shipped)."""
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    rr = RandomizedResponse(epsilon)
    p = rr.flip_probability
    vertices = np.asarray(vertices, dtype=np.int64)
    k = vertices.size
    domain = graph.layer_size(layer.opposite())

    seg_indptr, true_cols = gather_rows(*graph.adjacency_csr(layer), vertices)
    deg = np.diff(seg_indptr)
    seg_ids = np.repeat(np.arange(k, dtype=np.int64), deg)

    keep = rng.random(true_cols.size) >= p
    kept_seg = seg_ids[keep]
    kept_cols = true_cols[keep]

    cell_indptr = lengths_to_indptr(domain - deg)
    hits = bernoulli_hits(int(cell_indptr[-1]), p, rng)
    flip_seg = np.searchsorted(cell_indptr, hits, side="right") - 1
    positions = hits - cell_indptr[flip_seg]
    local = np.arange(true_cols.size, dtype=np.int64) - np.repeat(
        seg_indptr[:-1], deg
    )
    shifted = true_cols - local
    stride = domain + 1
    seg_e = np.repeat(np.arange(k, dtype=np.int64), deg)
    below = np.searchsorted(
        seg_e * stride + shifted, flip_seg * stride + positions, side="right"
    )
    flip_cols = positions + (below - seg_indptr[flip_seg])

    kept_keys = kept_seg * domain + kept_cols
    flip_keys = flip_seg * domain + flip_cols
    columns = np.empty(kept_keys.size + flip_keys.size, dtype=np.int64)
    at_kept = np.arange(kept_keys.size) + np.searchsorted(flip_keys, kept_keys)
    at_flip = np.arange(flip_keys.size) + np.searchsorted(kept_keys, flip_keys)
    columns[at_kept] = kept_cols
    columns[at_flip] = flip_cols
    row_counts = np.bincount(kept_seg, minlength=k) + np.bincount(
        flip_seg, minlength=k
    )
    return lengths_to_indptr(row_counts), columns


def _pr3_materialize_fresh(graph, vertices, epsilon, entropy, epoch):
    """PR 3's bounded ``materialize_fresh`` loop: seeded rng + one-vertex
    bulk call + per-row store, per miss."""
    rows: OrderedDict[int, np.ndarray] = OrderedDict()
    drawn: set[int] = set()
    nbytes = 0
    total = 0
    for v in vertices:
        v = int(v)
        keyed = np.random.default_rng([entropy, epoch, v])
        _, columns = _pr3_bulk_rr(
            graph, Layer.UPPER, np.array([v], dtype=np.int64), epsilon, keyed
        )
        row = np.asarray(columns, dtype=np.int64)
        old = rows.pop(v, None)
        if old is not None:
            nbytes -= old.nbytes
        rows[v] = row
        nbytes += row.nbytes
        drawn.add(v)
        total += int(row.size)
    return total


def _fresh_cache(graph, *, bounded: bool) -> NoisyViewCache:
    return NoisyViewCache(
        graph, Layer.UPPER, EPSILON,
        mode=ExecutionMode.MATERIALIZE,
        max_entries=(10 * BURST) if bounded else None,  # bounded, no churn
        rng=CACHE_SEED,
    )


def _best_fresh(graph, vertices, *, bounded: bool, repeats=REPEATS):
    cache = _fresh_cache(graph, bounded=bounded)
    cache.materialize_fresh(vertices[:50])  # warm code paths
    best = float("inf")
    for _ in range(repeats):
        cache = _fresh_cache(graph, bounded=bounded)
        start = time.perf_counter()
        cache.materialize_fresh(vertices)
        best = min(best, time.perf_counter() - start)
    return best, cache


def run_keyed_redraw() -> tuple[str, dict]:
    graph = random_bipartite(N_UPPER, N_LOWER, N_EDGES, rng=20260727)
    vertices = np.arange(BURST, dtype=np.int64)
    scale = BURST / LOOP_N

    t_block, cache = _best_fresh(graph, vertices, bounded=True)
    t_unbounded, _ = _best_fresh(graph, vertices, bounded=False)

    entropy, epoch = cache._entropy, cache.epoch
    _pr3_materialize_fresh(graph, vertices[:50], EPSILON, entropy, epoch)
    start = time.perf_counter()
    _pr3_materialize_fresh(graph, vertices[:LOOP_N], EPSILON, entropy, epoch)
    t_pr3 = (time.perf_counter() - start) * scale

    solo = _fresh_cache(graph, bounded=True)
    start = time.perf_counter()
    for v in range(LOOP_N):
        solo.materialize_fresh(vertices[v : v + 1])
    t_solo = (time.perf_counter() - start) * scale

    # Cross-contract bit-identity, checked on the clock's own output: the
    # solo cache shares the block cache's entropy (same seed), so its
    # one-at-a-time rows must equal the block draw bit for bit.
    for v in (0, LOOP_N // 2, LOOP_N - 1):
        np.testing.assert_array_equal(solo.view(v), cache.view(v))

    rows = {
        "block": t_block,
        "unbounded": t_unbounded,
        "pr3_loop": t_pr3,
        "solo_keyed": t_solo,
        "speedup_vs_pr3": t_pr3 / t_block,
        "speedup_vs_solo": t_solo / t_block,
        "ratio_vs_unbounded": t_block / t_unbounded,
        "noisy_ids": int(sum(cache.view(v).size for v in range(0, BURST, 97))),
    }
    lines = [
        f"{BURST}-vertex miss burst on {N_UPPER} x {N_LOWER} "
        f"({N_EDGES} edges), epsilon={EPSILON}, materialize_fresh level"
        + (" [QUICK]" if QUICK else ""),
        "",
        f"{'draw path':<30} {'seconds':>9} {'vs block':>9}",
        f"{'keyed block (new)':<30} {t_block:>9.3f} {1.0:>8.1f}x",
        f"{'unbounded bulk (shared rng)':<30} {t_unbounded:>9.3f} "
        f"{t_unbounded / t_block:>8.1f}x",
        f"{'pr3 per-vertex loop':<30} {t_pr3:>9.3f} {rows['speedup_vs_pr3']:>8.1f}x",
        f"{'solo keyed loop':<30} {t_solo:>9.3f} {rows['speedup_vs_solo']:>8.1f}x",
        "",
        f"block redraw is {rows['speedup_vs_pr3']:.1f}x the PR 3 loop and "
        f"{rows['ratio_vs_unbounded']:.2f}x the unbounded pass "
        f"(loops timed on {LOOP_N} vertices and scaled linearly)",
    ]
    return "\n".join(lines), rows


def test_keyed_redraw(emit):
    text, rows = run_keyed_redraw()
    emit("keyed_redraw", text)
    if QUICK:
        return  # smoke run: a tiny burst is all fixed overhead
    # The acceptance bar: the vectorized block recovers bulk-RR speed.
    assert rows["speedup_vs_pr3"] >= 5.0, (
        f"block redraw only {rows['speedup_vs_pr3']:.1f}x the per-vertex loop"
    )
    assert rows["ratio_vs_unbounded"] <= 2.0, (
        f"keyed block is {rows['ratio_vs_unbounded']:.2f}x the unbounded pass"
    )


if __name__ == "__main__":
    text, _ = run_keyed_redraw()
    print(text)

"""Transport substrates: fork vs socket overhead, in-worker reduction win.

The pluggable :class:`~repro.engine.transport.ShardTransport` layer
claims two things this benchmark pins:

* **substrate overhead** — the same keyed draw through the inline, fork
  and socket-loopback substrates returns byte-identical output, and the
  wall-clock cost of each substrate is reported side by side (fork pays
  pool forking + shm handoff; socket pays TCP framing + a one-time
  GRAPH install per worker).
* **in-worker diagonal reduction** — on a pair-dense workload whose
  pairs all live inside their shard, workers reduce ``N1`` locally and
  return scalars instead of noisy CSR fragments. The bytes that actually
  cross to the parent must shrink by at least
  :data:`REDUCTION_FLOOR` (1.5x) against shipping the fragments — the
  acceptance bound for the traffic win that makes remote workers pay.

Byte-identity across substrates is asserted throughout; a transport
benchmark is only meaningful if every substrate serves the same bits.

Run directly (``python benchmarks/bench_transport.py``) or via pytest
(``pytest benchmarks/bench_transport.py -s``). ``REPRO_BENCH_QUICK=1``
shrinks the workload to a seconds-long smoke run.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine.planner import plan_shards
from repro.engine.sharded import ShardedRunner
from repro.engine.transport import (
    ForkTransport,
    InlineTransport,
    SocketTransport,
    fork_available,
)
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
if QUICK:
    N_UPPER, N_LOWER, N_EDGES, BURST, REPEATS = 4_000, 600, 40_000, 3_000, 2
else:
    N_UPPER, N_LOWER, N_EDGES, BURST, REPEATS = 12_000, 900, 120_000, 8_000, 3
EPSILON = 2.0
ENTROPY = 20260808
SHARDS = 4
WORKERS = 2
# The acceptance floor: in-worker reduction must cut parent-bound bytes
# by at least this factor on an all-diagonal (pair-dense) workload.
REDUCTION_FLOOR = 1.5
SRC = Path(__file__).resolve().parents[1] / "src"


def _best(fn, repeats=REPEATS):
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def launch_worker():
    """Start one loopback worker; return (process, "host:port")."""
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.engine.worker",
            "--listen",
            "127.0.0.1:0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("LISTENING "):
        proc.kill()
        raise RuntimeError(f"worker never announced itself: {line!r}")
    return proc, line.split(" ", 1)[1]


def diagonal_pairs(plan) -> tuple[np.ndarray, np.ndarray]:
    """A pair-dense workload: every pair inside its own shard range."""
    ia, ib = [], []
    for s in range(plan.num_shards):
        lo, hi = int(plan.offsets[s]), int(plan.offsets[s + 1])
        for a in range(lo, hi - 1, 2):
            ia.append(a)
            ib.append(a + 1)
    return (
        np.array(ia, dtype=np.int64),
        np.array(ib, dtype=np.int64),
    )


def run_transport_bench() -> tuple[str, dict]:
    graph = random_bipartite(N_UPPER, N_LOWER, N_EDGES, rng=20260808)
    vertices = np.arange(BURST, dtype=np.int64)
    plan = plan_shards(graph, Layer.UPPER, vertices, EPSILON, shards=SHARDS)
    ia, ib = diagonal_pairs(plan)
    kwargs = dict(
        entropy=ENTROPY, epoch=0, ia=ia, ib=ib, domain=graph.num_lower
    )

    rows: dict = {"pairs": int(ia.size), "cpus": os.cpu_count() or 1}
    lines = [
        f"{BURST}-vertex burst, {ia.size} diagonal pairs over {SHARDS} "
        f"ranges on {N_UPPER} x {N_LOWER} ({N_EDGES} edges), "
        f"epsilon={EPSILON}" + (" [QUICK]" if QUICK else ""),
        "",
        f"{'substrate':<28} {'seconds':>9} {'to-parent bytes':>16}",
    ]

    # Inline reference: the substrate every other one must match.
    with ShardedRunner(
        graph, Layer.UPPER, transport=InlineTransport()
    ) as runner:
        t_inline, ref = _best(
            lambda: runner.run_workload(plan, EPSILON, **kwargs)
        )
    rows["inline_s"] = t_inline
    lines.append(f"{'inline (no processes)':<28} {t_inline:>9.3f} {'-':>16}")

    draws = {}
    if fork_available():
        with ShardedRunner(
            graph, Layer.UPPER, transport=ForkTransport(max_workers=WORKERS)
        ) as runner:
            runner.run_workload(plan, EPSILON, **kwargs)  # warm the pool
            t_fork, fork_draw = _best(
                lambda: runner.run_workload(plan, EPSILON, **kwargs)
            )
        draws["fork"] = fork_draw
        rows["fork_s"] = t_fork
        rows["fork_bytes_to_parent"] = fork_draw.transport["bytes_to_parent"]
        lines.append(
            f"{'fork (2 workers, shm)':<28} {t_fork:>9.3f} "
            f"{fork_draw.transport['bytes_to_parent']:>16,}"
        )

    procs = [launch_worker() for _ in range(WORKERS)]
    try:
        transport = SocketTransport([addr for _, addr in procs])
        with ShardedRunner(
            graph, Layer.UPPER, transport=transport
        ) as runner:
            runner.run_workload(plan, EPSILON, **kwargs)  # install graphs
            t_socket, socket_draw = _best(
                lambda: runner.run_workload(plan, EPSILON, **kwargs)
            )
    finally:
        for proc, _ in procs:
            proc.terminate()
        for proc, _ in procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
    draws["socket"] = socket_draw
    rows["socket_s"] = t_socket
    detail = socket_draw.transport
    rows["socket_bytes_to_parent"] = detail["bytes_to_parent"]
    rows["socket_bytes_saved"] = detail["bytes_saved"]
    lines.append(
        f"{'socket (2 loopback workers)':<28} {t_socket:>9.3f} "
        f"{detail['bytes_to_parent']:>16,}"
    )

    # Byte-identity across every substrate that ran.
    for name, draw in draws.items():
        np.testing.assert_array_equal(ref.n1, draw.n1, err_msg=name)
        np.testing.assert_array_equal(ref.sizes, draw.sizes, err_msg=name)

    # The reduction win: what the fragments would have cost vs what the
    # reduced scalars actually cost across the wire.
    shipped = detail["bytes_to_parent"]
    would_have = shipped + detail["bytes_saved"]
    reduction = would_have / max(1, shipped)
    rows["reduction_factor"] = reduction
    rows["reduced_shards"] = detail["reduced_shards"]
    lines += [
        "",
        f"in-worker diagonal reduction: {detail['reduced_shards']}/{SHARDS} "
        f"shards reduced locally, {detail['reduced_pairs']} pairs",
        f"parent-bound traffic: {shipped:,} bytes vs {would_have:,} "
        f"shipping fragments — {reduction:.1f}x smaller "
        f"(floor {REDUCTION_FLOOR}x)",
    ]
    return "\n".join(lines), rows


def test_transport_bench(emit):
    text, rows = run_transport_bench()
    emit("transport", text)
    # Byte-identity across substrates was asserted inside the run; the
    # contract pinned here is the traffic win of in-worker reduction.
    assert rows["reduced_shards"] == SHARDS, (
        "an all-diagonal workload must reduce every shard in-worker"
    )
    assert rows["reduction_factor"] >= REDUCTION_FLOOR, (
        f"in-worker reduction only cut parent-bound bytes by "
        f"{rows['reduction_factor']:.2f}x (floor {REDUCTION_FLOOR}x)"
    )


if __name__ == "__main__":
    text, _ = run_transport_bench()
    print(text)

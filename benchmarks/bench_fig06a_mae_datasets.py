"""Fig. 6(a) — mean absolute error across all 15 datasets at ε = 2.

Shape assertions (paper's headline comparison): the multiple-round
algorithms beat OneR and Naive on every dataset — typically by orders of
magnitude on the large ones — OneR beats Naive overall, MultiR-DS* edges
out MultiR-DS (no degree-round spend), and CentralDP lower-bounds all
edge-LDP algorithms.
"""

from __future__ import annotations

import numpy as np
from benchutil import run_once

from repro.datasets.registry import dataset_keys
from repro.experiments.fig6_datasets import run_fig6a


def _gmean(values) -> float:
    arr = np.maximum(np.asarray(values, dtype=float), 1e-9)
    return float(np.exp(np.log(arr).mean()))


def test_fig6a_mae_across_datasets(benchmark, config, emit):
    panel = run_once(
        benchmark,
        run_fig6a,
        epsilon=config.epsilon,
        num_pairs=config.num_pairs,
        max_edges=config.max_edges,
        rng=config.seed,
    )
    emit("fig06a_mae_datasets", panel.to_text())

    keys = dataset_keys()
    assert panel.x_values == keys

    naive = panel.series["naive"]
    oner = panel.series["oner"]
    ss = panel.series["multir-ss"]
    ds = panel.series["multir-ds"]
    star = panel.series["multir-ds-star"]
    central = panel.series["central-dp"]

    # Multiple-round beats both one-round algorithms on every dataset.
    for i, key in enumerate(keys):
        assert ss[i] < oner[i], key
        assert ds[i] < oner[i], key
        assert ds[i] < naive[i], key

    # OneR beats Naive in aggregate (per-dataset it can tie on tiny pools).
    assert _gmean(oner) < _gmean(naive)

    # CentralDP is the utility upper bound.
    assert _gmean(central) < min(_gmean(ss), _gmean(ds))

    # DS* (public degrees) is at least as good as DS on average.
    assert _gmean(star) <= _gmean(ds) * 1.1

    # On the biggest candidate pools the gap reaches orders of magnitude.
    gaps = [naive[i] / max(ds[i], 1e-9) for i in range(len(keys))]
    assert max(gaps) > 50

"""Fig. 8 — effectiveness of the privacy-budget allocation optimization.

Shape assertions: no single fixed ε1 wins on every dataset, and MultiR-DS
(which optimizes ε1 and α per query) lands close to — or below — the best
fixed allocation of MultiR-DS-Basic on each dataset.
"""

from __future__ import annotations

from benchutil import run_once

from repro.experiments.fig8_budget import DEFAULT_FRACTIONS, FIG8_DATASETS, run_fig8


def test_fig8_budget_allocation(benchmark, config, emit):
    panels = run_once(
        benchmark,
        run_fig8,
        datasets=FIG8_DATASETS,
        fractions=DEFAULT_FRACTIONS,
        epsilon=config.epsilon,
        num_pairs=config.num_pairs,
        max_edges=config.max_edges,
        rng=config.seed,
    )
    emit("fig08_budget", "\n\n".join(p.to_text() for p in panels))

    assert len(panels) == len(FIG8_DATASETS)
    for panel, key in zip(panels, FIG8_DATASETS):
        basic = panel.series["multir-ds-basic"]
        ds_line = panel.series["multir-ds (optimized)"][0]

        # The optimized algorithm tracks the best fixed allocation
        # (sampling noise allowed for: within 60% of the per-dataset best,
        # the paper's "close to or even smaller").
        assert ds_line <= min(basic) * 1.6, key
        # And it clearly beats the worst fixed allocation.
        assert ds_line < max(basic), key

"""Fig. 10 — communication cost (MB per query) as ε varies.

Shape assertions: Naive and OneR move essentially the same bytes (same RR
round at full budget); MultiR-SS adds the download leg and runs RR at
ε1 = ε/2, so it costs more; MultiR-DS adds the degree round and the second
direction and costs the most; every curve decreases in ε (sparser noisy
lists).
"""

from __future__ import annotations

from benchutil import run_once

from repro.experiments.fig10_communication import (
    FIG10_DATASETS,
    run_fig10,
)

EPSILONS = (1.0, 1.5, 2.0, 2.5, 3.0)


def test_fig10_communication(benchmark, config, emit):
    panels = run_once(
        benchmark,
        run_fig10,
        datasets=FIG10_DATASETS,
        epsilons=EPSILONS,
        num_pairs=max(10, config.num_pairs // 3),
        max_edges=config.max_edges,
        rng=config.seed,
    )
    emit("fig10_communication", "\n\n".join(p.to_text() for p in panels))

    for panel, key in zip(panels, FIG10_DATASETS):
        naive = panel.series["naive"]
        oner = panel.series["oner"]
        ss = panel.series["multir-ss"]
        ds = panel.series["multir-ds"]

        for i in range(len(EPSILONS)):
            # Naive and OneR use the identical RR round.
            assert abs(naive[i] - oner[i]) / max(naive[i], 1e-12) < 0.15, key
            # The multiple-round framework pays more communication.
            assert ss[i] > naive[i], key
            assert ds[i] > ss[i], key

        # Costs fall as epsilon grows for every algorithm.
        for series in (naive, oner, ss, ds):
            assert series[0] > series[-1], key

"""Sharded bulk RR: fanned keyed draws vs. the single-process pass.

The keyed Philox contract makes the bulk-RR miss burst embarrassingly
partitionable over vertex ranges (bit-identical output per vertex
whatever the shard boundaries), so a burst whose noisy output exceeds
one worker's memory can fan out across forked processes. This benchmark
pins the two claims the sharding layer makes:

* **wall-clock speedup** — a 2-worker draw of a large miss burst must be
  >= 1.6x the single-process keyed pass (and a 4-worker draw must keep
  scaling when the machine has the cores). Fragments come back through
  shared memory, so the fan-out costs one parent-side memcpy, not a
  pipe-interleaved pickle.
* **bounded per-worker memory** — with a ``mem_bytes`` shard budget,
  every worker's tracemalloc peak during its draw stays within the
  budget times the kernel's scratch factor (measured ~6.1x: counters,
  uniforms and gap buffers over the noisy payload), far below the
  unsharded pass's peak.

Both runs are asserted bit-identical to the serial keyed pass while
benchmarking. Speedup assertions are skipped when the host has a single
CPU (process parallelism cannot help there); the memory bound and
bit-identity are asserted always, quick mode included.

Run directly (``python benchmarks/bench_sharded.py``) or via pytest
(``pytest benchmarks/bench_sharded.py -s``). ``REPRO_BENCH_QUICK=1``
shrinks the workload to a seconds-long smoke run that still asserts the
speedup — the quick burst is sized so the draw dominates the fan-out
overhead.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.engine.bulkrr import keyed_bulk_randomized_response
from repro.engine.planner import plan_shards
from repro.engine.sharded import ShardedRunner, fork_available
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
if QUICK:
    N_UPPER, N_LOWER, N_EDGES, BURST, REPEATS = 12_000, 1_200, 120_000, 10_000, 3
else:
    N_UPPER, N_LOWER, N_EDGES, BURST, REPEATS = 24_000, 1_500, 240_000, 20_000, 3
EPSILON = 2.0
ENTROPY = 99
# Worker peak over the planner's per-shard byte estimate: the keyed
# kernel's scratch (Philox counters, uniforms, gap buffers) measures
# ~6.1x the noisy payload; 8x is the guarded ceiling.
SCRATCH_FACTOR = 8.0
CPUS = os.cpu_count() or 1


def _best(fn, repeats=REPEATS):
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def run_sharded_bench() -> tuple[str, dict]:
    graph = random_bipartite(N_UPPER, N_LOWER, N_EDGES, rng=20260727)
    vertices = np.arange(BURST, dtype=np.int64)

    t_serial, reference = _best(
        lambda: keyed_bulk_randomized_response(
            graph, Layer.UPPER, vertices, EPSILON, entropy=ENTROPY, epoch=0
        )
    )

    rows: dict = {"serial": t_serial, "cpus": CPUS, "fork": fork_available()}
    lines = [
        f"{BURST}-vertex miss burst on {N_UPPER} x {N_LOWER} "
        f"({N_EDGES} edges), epsilon={EPSILON}, {CPUS} cpus"
        + (" [QUICK]" if QUICK else ""),
        "",
        f"{'draw path':<28} {'seconds':>9} {'speedup':>9}",
        f"{'serial keyed pass':<28} {t_serial:>9.3f} {1.0:>8.1f}x",
    ]

    worker_counts = [2] if QUICK else [2, 4]
    for workers in worker_counts:
        plan = plan_shards(
            graph, Layer.UPPER, vertices, EPSILON, shards=workers
        )
        with ShardedRunner(graph, Layer.UPPER, max_workers=workers) as runner:
            runner.draw(plan, EPSILON, entropy=ENTROPY, epoch=0)  # warm pool
            t_sharded, draw = _best(
                lambda: runner.draw(plan, EPSILON, entropy=ENTROPY, epoch=0)
            )
        # Bit-identity while benchmarking: shard boundaries are invisible.
        np.testing.assert_array_equal(draw.indptr, reference[0])
        np.testing.assert_array_equal(draw.columns, reference[1])
        speedup = t_serial / t_sharded
        rows[f"sharded_{workers}w"] = t_sharded
        rows[f"speedup_{workers}w"] = speedup
        lines.append(
            f"{f'sharded, {workers} workers':<28} {t_sharded:>9.3f} "
            f"{speedup:>8.1f}x"
        )

    # Per-worker memory bound: a mem-budget plan (about a quarter of the
    # burst per shard) must keep every worker's draw peak within the
    # scratch-factor envelope of the budget.
    budget = max(1, int(sum(plan.est_bytes)) // 4)
    mem_plan = plan_shards(
        graph, Layer.UPPER, vertices, EPSILON, mem_bytes=budget
    )
    with ShardedRunner(graph, Layer.UPPER, max_workers=2) as runner:
        probe = runner.draw(
            mem_plan, EPSILON, entropy=ENTROPY, epoch=0, measure_memory=True
        )
    np.testing.assert_array_equal(probe.columns, reference[1])
    peaks = [s["peak_bytes"] for s in probe.shards]
    rows["mem_budget"] = budget
    rows["worker_peak"] = max(peaks)
    rows["peak_over_budget"] = max(peaks) / budget
    lines += [
        "",
        f"memory probe: {mem_plan.num_shards} shards under a "
        f"{budget / 1e6:.1f} MB budget",
        f"worker peak {max(peaks) / 1e6:.1f} MB = "
        f"{rows['peak_over_budget']:.1f}x budget "
        f"(scratch ceiling {SCRATCH_FACTOR:.0f}x)",
    ]
    return "\n".join(lines), rows


def test_sharded_bench(emit):
    text, rows = run_sharded_bench()
    emit("sharded", text)
    # Bit-identity was asserted inside the run; the memory envelope holds
    # at every scale, quick mode included.
    assert rows["peak_over_budget"] <= SCRATCH_FACTOR, (
        f"worker peak is {rows['peak_over_budget']:.1f}x the shard budget"
    )
    if not rows["fork"] or CPUS < 2:
        return  # a single-cpu host cannot show process-parallel speedup
    assert rows["speedup_2w"] >= 1.6, (
        f"2-worker draw only {rows['speedup_2w']:.2f}x the serial pass"
    )
    if not QUICK and CPUS >= 4:
        assert rows["speedup_4w"] >= 2.2, (
            f"4-worker draw only {rows['speedup_4w']:.2f}x the serial pass"
        )


if __name__ == "__main__":
    text, _ = run_sharded_bench()
    print(text)

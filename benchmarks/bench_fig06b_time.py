"""Fig. 6(b) — computational time per query across datasets.

Shape assertions (paper's complexity analysis, run in materialize mode so
the O(n1) noisy-graph round and the O(n2) degree round are actually paid):
Naive, OneR and MultiR-SS are comparable; MultiR-DS is the slowest (extra
degree round); MultiR-DS* sits at or below MultiR-DS.
"""

from __future__ import annotations

import numpy as np
from benchutil import run_once

from repro.experiments.fig6_datasets import run_fig6b


def test_fig6b_time_across_datasets(benchmark, config, emit):
    panel = run_once(
        benchmark,
        run_fig6b,
        epsilon=config.epsilon,
        num_pairs=3,
        max_edges=config.max_edges,
        rng=config.seed,
    )
    emit("fig06b_time_datasets", panel.to_text(precision=3))

    naive = np.array(panel.series["naive"])
    oner = np.array(panel.series["oner"])
    ss = np.array(panel.series["multir-ss"])
    ds = np.array(panel.series["multir-ds"])
    star = np.array(panel.series["multir-ds-star"])

    # All algorithms complete every dataset in sane per-query time.
    for series in (naive, oner, ss, ds, star):
        assert (series > 0).all()
        assert series.max() < 60.0

    # Naive / OneR / MultiR-SS are within a small factor of each other.
    assert ss.mean() < 4 * max(naive.mean(), oner.mean())

    # MultiR-DS pays the extra degree round: slowest in aggregate.
    assert ds.mean() > naive.mean()
    assert ds.mean() >= star.mean() * 0.8  # DS* skips that round

"""Fig. 11 — effect of the number of vertices (vertex-sampled subgraphs).

Shape assertions: Naive's and OneR's errors grow with the graph size
(their losses carry n1² / n1 factors); MultiR-SS, MultiR-DS and CentralDP
stay flat (degree-only dependence).
"""

from __future__ import annotations

from benchutil import run_once

from repro.experiments.fig11_scalability import (
    DEFAULT_FRACTIONS,
    FIG11_DATASETS,
    run_fig11,
)


def test_fig11_scalability(benchmark, config, emit):
    panels = run_once(
        benchmark,
        run_fig11,
        datasets=FIG11_DATASETS,
        fractions=DEFAULT_FRACTIONS,
        epsilon=config.epsilon,
        num_pairs=config.num_pairs,
        max_edges=config.max_edges,
        rng=config.seed,
    )
    emit("fig11_scalability", "\n\n".join(p.to_text() for p in panels))

    for panel, key in zip(panels, FIG11_DATASETS):
        naive = panel.series["naive"]
        oner = panel.series["oner"]
        ds = panel.series["multir-ds"]
        central = panel.series["central-dp"]

        # One-round algorithms degrade as the candidate pool grows.
        assert naive[-1] > 1.5 * naive[0], key
        assert oner[-1] > 1.2 * oner[0], key

        # MultiR-DS and CentralDP are insensitive to the graph size
        # (bounded ratio across the whole sweep).
        assert max(ds) < 5 * max(min(ds), 1e-3), key
        assert max(central) < 5 * max(min(central), 1e-3), key

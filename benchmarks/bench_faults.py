"""Resilience envelope: happy-path overhead and faulted recovery latency.

The fault-tolerant :class:`~repro.engine.sharded.ShardedRunner` wraps
every shard task in deadlines, checksum verification, and a re-dispatch
loop. This benchmark pins the two costs that wrapper is allowed to have:

* **happy-path overhead** — with no faults injected, the resilient
  runner's inline draw must stay within 5% of the bare
  :func:`~repro.engine.bulkrr.shard_bulk_randomized_response` pass over
  the same ranges (measured single-process so the comparison is
  apples-to-apples on any host: same code path, plus only the envelope's
  bookkeeping).
* **recovery latency** — with one worker killed on its first dispatch
  (a deterministic :class:`~repro.engine.faults.FaultPlan`), the pooled
  draw must still return byte-identical output; the wall-clock gap
  between the faulted and fault-free pooled draw is reported as the
  recovery cost (pool rebuild + keyed backoff + re-dispatch).

Byte-identity against the serial keyed pass is asserted throughout —
benchmarking the resilience layer is only meaningful if the bits it
serves under failure are the bits it serves without.

Run directly (``python benchmarks/bench_faults.py``) or via pytest
(``pytest benchmarks/bench_faults.py -s``). ``REPRO_BENCH_QUICK=1``
shrinks the workload to a seconds-long smoke run.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.engine.bulkrr import shard_bulk_randomized_response
from repro.engine.faults import FaultPlan
from repro.engine.planner import plan_shards
from repro.engine.sharded import ShardedRunner, fork_available
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
if QUICK:
    N_UPPER, N_LOWER, N_EDGES, BURST, REPEATS = 12_000, 1_200, 120_000, 10_000, 3
else:
    N_UPPER, N_LOWER, N_EDGES, BURST, REPEATS = 24_000, 1_500, 240_000, 20_000, 5
EPSILON = 2.0
ENTROPY = 424242
SHARDS = 2
# The resilience envelope's allowed happy-path cost over the bare pass.
OVERHEAD_CEILING = 1.05
CPUS = os.cpu_count() or 1


def _best(fn, repeats=REPEATS):
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def run_faults_bench() -> tuple[str, dict]:
    graph = random_bipartite(N_UPPER, N_LOWER, N_EDGES, rng=20260808)
    vertices = np.arange(BURST, dtype=np.int64)
    plan = plan_shards(graph, Layer.UPPER, vertices, EPSILON, shards=SHARDS)
    ranges = plan.ranges()

    # Bare baseline: the pre-resilience sharded pass over the same
    # ranges, single-process — no deadlines, no checksums, no registry.
    def bare():
        return shard_bulk_randomized_response(
            graph, Layer.UPPER, vertices, EPSILON,
            entropy=ENTROPY, epoch=0, ranges=ranges,
        )

    t_bare, reference = _best(bare)

    # Resilient inline: same single-process draw through the full
    # envelope (fault hooks consulted, provenance assembled).
    with ShardedRunner(
        graph, Layer.UPPER, max_workers=1, timeout_s=30.0, max_retries=2
    ) as runner:
        t_resilient, draw = _best(
            lambda: runner.draw(plan, EPSILON, entropy=ENTROPY, epoch=0)
        )
    np.testing.assert_array_equal(draw.indptr, reference[0])
    np.testing.assert_array_equal(draw.columns, reference[1])
    overhead = t_resilient / t_bare

    rows: dict = {
        "bare": t_bare,
        "resilient": t_resilient,
        "overhead": overhead,
        "cpus": CPUS,
        "fork": fork_available(),
    }
    lines = [
        f"{BURST}-vertex burst over {SHARDS} ranges on {N_UPPER} x {N_LOWER} "
        f"({N_EDGES} edges), epsilon={EPSILON}, {CPUS} cpus"
        + (" [QUICK]" if QUICK else ""),
        "",
        f"{'path':<34} {'seconds':>9}",
        f"{'bare sharded pass':<34} {t_bare:>9.3f}",
        f"{'resilient runner (no faults)':<34} {t_resilient:>9.3f}"
        f"   ({overhead:.3f}x bare)",
    ]

    # Recovery latency: pooled draw with one worker killed on first
    # dispatch vs the fault-free pooled draw. Pool-dependent, so only
    # where fork exists.
    if fork_available():
        with ShardedRunner(
            graph, Layer.UPPER,
            max_workers=2, timeout_s=30.0, max_retries=2, backoff_base_s=0.05,
        ) as runner:
            runner.draw(plan, EPSILON, entropy=ENTROPY, epoch=0)  # warm pool
            t_clean, _ = _best(
                lambda: runner.draw(plan, EPSILON, entropy=ENTROPY, epoch=0),
                repeats=min(REPEATS, 3),
            )
        # A separate runner for the faulted draws: workers inherit the
        # plan at fork time, so it must be installed before the first
        # draw ever forks the pool. Each faulted draw then kills shard
        # 0's worker on its first dispatch, and the rebuilt pool
        # (re-forked under the still-active plan) completes the retry —
        # every repeat pays the full fault + rebuild + re-dispatch cost.
        with ShardedRunner(
            graph, Layer.UPPER,
            max_workers=2, timeout_s=30.0, max_retries=2, backoff_base_s=0.05,
        ) as runner:
            with FaultPlan.kill_shards([0]).active():
                t_faulted, chaos = _best(
                    lambda: runner.draw(plan, EPSILON, entropy=ENTROPY, epoch=0),
                    repeats=min(REPEATS, 3),
                )
        np.testing.assert_array_equal(chaos.indptr, reference[0])
        np.testing.assert_array_equal(chaos.columns, reference[1])
        assert chaos.faults["worker_deaths"] >= 1
        recovery = t_faulted - t_clean
        rows["pooled_clean"] = t_clean
        rows["pooled_faulted"] = t_faulted
        rows["recovery_latency"] = recovery
        lines += [
            f"{'pooled draw (2 workers, clean)':<34} {t_clean:>9.3f}",
            f"{'pooled draw (1 worker killed)':<34} {t_faulted:>9.3f}",
            "",
            f"recovery latency under 1 killed worker: {recovery * 1e3:.0f} ms "
            "(pool rebuild + keyed backoff + re-dispatch)",
        ]
    return "\n".join(lines), rows


def test_faults_bench(emit):
    text, rows = run_faults_bench()
    emit("faults", text)
    # Byte-identity (with and without faults) was asserted inside the
    # run; the envelope's happy-path cost is the contract pinned here.
    assert rows["overhead"] <= OVERHEAD_CEILING, (
        f"resilience wrapper costs {rows['overhead']:.3f}x the bare pass "
        f"on the happy path (ceiling {OVERHEAD_CEILING}x)"
    )
    if "recovery_latency" in rows:
        # Recovery is reported, not capped: it is dominated by pool
        # rebuild time, which varies wildly across hosts. It must at
        # least be finite and the faulted draw must have completed.
        assert rows["pooled_faulted"] > 0


if __name__ == "__main__":
    text, _ = run_faults_bench()
    print(text)

"""Ablations of MultiR-DS's design choices (DESIGN.md §7).

Three ablations beyond the paper's own Figs. 8–9:

* optimizer on/off — MultiR-DS vs DS-Basic on an imbalanced workload;
* degree-estimation spend — sweeping ε0 shows the 5% default is near the
  sweet spot between allocation quality and working-budget loss;
* degree correction on/off — replacing non-positive noisy degrees by the
  layer average must not hurt (it guards the optimizer's inputs).
"""

from __future__ import annotations

import numpy as np
from benchutil import run_once

from repro.datasets.cache import load_dataset
from repro.estimators.multir_ds import (
    MultiRoundDoubleSource,
    MultiRoundDoubleSourceBasic,
)
from repro.experiments.report import SeriesPanel
from repro.experiments.runner import evaluate_algorithms
from repro.graph.sampling import heaviest_layer, sample_imbalanced_pairs
from repro.protocol.session import ExecutionMode

DATASET = "TM"
KAPPA = 100.0


def _workload(config):
    graph = load_dataset(DATASET, config.max_edges)
    layer = heaviest_layer(graph)
    pairs = sample_imbalanced_pairs(
        graph, layer, config.num_pairs, KAPPA, rng=config.seed
    )
    return graph, pairs


def test_ablation_optimizer_on_off(benchmark, config, emit):
    def run():
        graph, pairs = _workload(config)
        return evaluate_algorithms(
            graph,
            pairs,
            [MultiRoundDoubleSourceBasic(), MultiRoundDoubleSource()],
            config.epsilon,
            rng=config.seed,
            mode=ExecutionMode.SKETCH,
        )

    stats = run_once(benchmark, run)
    panel = SeriesPanel(
        title=f"Ablation — optimizer on/off ({DATASET}, kappa={KAPPA:g})",
        x_label="variant",
        x_values=["mae"],
    )
    panel.add("multir-ds-basic (off)", [stats["multir-ds-basic"].errors.mae])
    panel.add("multir-ds (on)", [stats["multir-ds"].errors.mae])
    emit("ablation_optimizer", panel.to_text())

    # On an imbalanced workload the optimizer must pay for itself.
    assert stats["multir-ds"].errors.mae < stats["multir-ds-basic"].errors.mae


def test_ablation_eps0_sweep(benchmark, config, emit):
    fractions = (0.01, 0.05, 0.15, 0.35)

    def run():
        graph, pairs = _workload(config)
        maes = []
        for fraction in fractions:
            stats = evaluate_algorithms(
                graph,
                pairs,
                [MultiRoundDoubleSource(eps0_fraction=fraction)],
                config.epsilon,
                rng=config.seed,
                mode=ExecutionMode.SKETCH,
            )
            maes.append(stats["multir-ds"].errors.mae)
        return maes

    maes = run_once(benchmark, run)
    panel = SeriesPanel(
        title=f"Ablation — degree-round budget eps0 ({DATASET}, kappa={KAPPA:g})",
        x_label="eps0 / eps",
        x_values=list(fractions),
    )
    panel.add("multir-ds", maes)
    emit("ablation_eps0", panel.to_text())

    # Burning a third of the budget on degree estimation must be worse
    # than the paper's small default.
    default_idx = fractions.index(0.05)
    assert maes[default_idx] < maes[-1] * 1.5


def test_ablation_degree_correction(benchmark, config, emit):
    # Both variants share the registry name, so evaluate them separately.
    def run_both():
        graph, pairs = _workload(config)
        out = {}
        for label, correct in (("corrected", True), ("raw", False)):
            stats = evaluate_algorithms(
                graph,
                pairs,
                [MultiRoundDoubleSource(correct_degrees=correct)],
                config.epsilon,
                rng=config.seed,
                mode=ExecutionMode.SKETCH,
            )
            out[label] = stats["multir-ds"].errors.mae
        return out

    maes = run_once(benchmark, run_both)
    panel = SeriesPanel(
        title=f"Ablation — degree correction ({DATASET}, kappa={KAPPA:g})",
        x_label="variant",
        x_values=["mae"],
    )
    for label, mae in maes.items():
        panel.add(label, [mae])
    emit("ablation_degree_correction", panel.to_text())

    # Correction never hurts much (it only replaces unusable reports).
    assert maes["corrected"] < maes["raw"] * 1.5

"""Serving layer: coalesced ticks + epoch cache vs. per-query engine calls.

Three configurations serve the same concurrent client workload on a
2k x 10k materialize-path graph (the mode whose per-vertex noisy-view
cache makes every repeat touch of a vertex budget-free). Traffic is
drawn from a 250-vertex hot pool — the skewed shape real query traffic
has — so vertices recur across ticks and the epoch cache pays off even
before any client replays its workload:

* ``per-query`` — one ``BatchQueryEngine.estimate_pairs`` call per query
  (no coalescing, no cache): what a naive request handler would do.
* ``served`` — the :class:`~repro.serving.QueryServer` tick loop: every
  burst of concurrent queries becomes one engine workload.
* ``served+replay`` — the same, with each client replaying its workload
  within the epoch: replays are answered from the noisy-view cache at
  zero budget, so the second pass is nearly free in both time and spend.

Run directly (``python benchmarks/bench_serving.py``) or via pytest
(``pytest benchmarks/bench_serving.py -s``).
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.engine import BatchQueryEngine
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.serving import QueryServer, simulate_clients
from repro.serving.driver import _pool_pairs

N_UPPER, N_LOWER, N_EDGES = 2000, 10_000, 60_000
NUM_CLIENTS = 100
QUERIES_PER_CLIENT = 8
HOT_POOL = 250
EPSILON = 2.0


def _time(fn, repeats=2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_serving_comparison() -> tuple[str, dict[str, float]]:
    graph = random_bipartite(N_UPPER, N_LOWER, N_EDGES, rng=20260727)
    total = NUM_CLIENTS * QUERIES_PER_CLIENT
    pool = np.flatnonzero(graph.degrees(Layer.UPPER) > 0)[:HOT_POOL]
    engine = BatchQueryEngine()

    # The per-query baseline answers the same traffic shape, one engine
    # call (and one fresh perturbation of both endpoints) per query.
    scratch = QueryServer(graph, Layer.UPPER, EPSILON)
    pairs = _pool_pairs(scratch, pool, total, np.random.default_rng(5))

    def per_query():
        rng = np.random.default_rng(7)
        for pair in pairs:
            engine.estimate_pairs(graph, Layer.UPPER, [pair], EPSILON, rng=rng)

    def served(replays: int):
        async def run():
            async with QueryServer(graph, Layer.UPPER, EPSILON, rng=7) as server:
                await simulate_clients(
                    server, NUM_CLIENTS, QUERIES_PER_CLIENT, rng=11,
                    replays=replays, pool=pool,
                )
                return server

        return asyncio.run(run())

    t_per_query = _time(per_query)
    t_served = _time(lambda: served(1))
    t_replay = _time(lambda: served(2))

    # Spend bookkeeping from one fresh replayed run: the second pass of
    # every client workload must be budget-free.
    async def spend_run():
        async with QueryServer(graph, Layer.UPPER, EPSILON, rng=7) as server:
            await simulate_clients(
                server, NUM_CLIENTS, QUERIES_PER_CLIENT, rng=11, replays=2,
                pool=pool,
            )
            return (
                server.accountant.max_lifetime_spent(),
                server.cache.stats.hit_rate(),
                server.stats.mean_coalesced(),
            )

    spend, hit_rate, mean_coalesced = asyncio.run(spend_run())

    rows = {
        "per_query": t_per_query,
        "served": t_served,
        "served_replay": t_replay,
        "speedup": t_per_query / t_served,
        "replay_speedup": 2.0 * t_per_query / t_replay,
        "max_spend": spend,
        "hit_rate": hit_rate,
        "mean_coalesced": mean_coalesced,
    }
    lines = [
        f"serving {total} queries ({NUM_CLIENTS} clients x "
        f"{QUERIES_PER_CLIENT}) on a {N_UPPER} x {N_LOWER} graph "
        f"({N_EDGES} edges), epsilon={EPSILON}",
        f"{'configuration':<22} {'time[s]':>9} {'vs per-query':>13}",
        f"{'per-query engine':<22} {t_per_query:>9.3f} {'1.0x':>13}",
        f"{'served (coalesced)':<22} {t_served:>9.3f} "
        f"{rows['speedup']:>12.1f}x",
        f"{'served + epoch replay':<22} {t_replay:>9.3f} "
        f"{rows['replay_speedup']:>12.1f}x  (2x the queries)",
        "",
        f"epoch cache: hit rate {hit_rate:.1%}, "
        f"mean {mean_coalesced:.1f} queries/tick, "
        f"max per-vertex spend {spend:.3f} "
        f"(= one epsilon despite the replay)",
    ]
    return "\n".join(lines), rows


def test_serving_speedup(emit):
    text, rows = run_serving_comparison()
    emit("serving", text)

    assert rows["speedup"] >= 2.0
    # Replay doubles the query count but not the budget...
    assert rows["max_spend"] <= EPSILON + 1e-9
    # ...and at least half the lookups came from the epoch cache.
    assert rows["hit_rate"] >= 0.45


if __name__ == "__main__":
    text, _ = run_serving_comparison()
    print(text)

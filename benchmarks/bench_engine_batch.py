"""Batch query engine vs. the per-pair shared-round loop.

Times ``BatchOneRound.estimate_pairs`` (the seed per-vertex perturbation
loop with a per-pair ``np.intersect1d``) against the vectorized
``BatchQueryEngine`` at 1k / 10k / 100k query pairs on a 2k x 10k graph,
for both engine execution modes:

* ``materialize`` — same noisy-list semantics as the loop (bulk RR +
  bitset/sparse pairwise counting); an apples-to-apples vectorization win.
* ``sketch`` — the engine's scale path: sufficient statistics drawn from
  their exact distributions, never materializing a list; this is the mode
  AUTO picks beyond the materialization limit and the one that carries
  million-vertex workloads.

Run directly (``python benchmarks/bench_engine_batch.py``) or via pytest
(``pytest benchmarks/bench_engine_batch.py -s``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine import BatchQueryEngine
from repro.estimators.batch import BatchOneRound
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.graph.sampling import sample_query_pairs
from repro.privacy.rng import spawn_rngs
from repro.protocol.session import ExecutionMode

N_UPPER, N_LOWER, N_EDGES = 2000, 10_000, 60_000
PAIR_COUNTS = (1_000, 10_000, 100_000)
EPSILON = 2.0


def _time(fn, repeats=2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_engine_batch_comparison() -> tuple[str, dict[int, dict[str, float]]]:
    graph = random_bipartite(N_UPPER, N_LOWER, N_EDGES, rng=20250622)
    loop = BatchOneRound()
    engine = BatchQueryEngine()
    rngs = iter(spawn_rngs(7, 6 * len(PAIR_COUNTS)))

    rows: dict[int, dict[str, float]] = {}
    lines = [
        f"batch C2 workloads on a {N_UPPER} x {N_LOWER} graph "
        f"({N_EDGES} edges), epsilon={EPSILON}",
        f"{'pairs':>8} {'loop[s]':>9} {'engine-mat[s]':>14} {'x':>6} "
        f"{'engine-sketch[s]':>17} {'x':>7}",
    ]
    for count in PAIR_COUNTS:
        pairs = sample_query_pairs(graph, Layer.UPPER, count, rng=count)
        t_loop = _time(
            lambda: loop.estimate_pairs(graph, Layer.UPPER, pairs, EPSILON, rng=next(rngs))
        )
        mat_result = {}
        t_mat = _time(
            lambda: mat_result.update(
                r=engine.estimate_pairs(
                    graph, Layer.UPPER, pairs, EPSILON, rng=next(rngs),
                    mode=ExecutionMode.MATERIALIZE,
                )
            )
        )
        t_sketch = _time(
            lambda: engine.estimate_pairs(
                graph, Layer.UPPER, pairs, EPSILON, rng=next(rngs),
                mode=ExecutionMode.SKETCH,
            )
        )
        assert mat_result["r"].max_epsilon_spent <= EPSILON + 1e-9
        rows[count] = {
            "loop": t_loop,
            "materialize": t_mat,
            "sketch": t_sketch,
            "speedup_materialize": t_loop / t_mat,
            "speedup_sketch": t_loop / t_sketch,
        }
        lines.append(
            f"{count:>8} {t_loop:>9.3f} {t_mat:>14.3f} "
            f"{t_loop / t_mat:>5.1f}x {t_sketch:>17.3f} "
            f"{t_loop / t_sketch:>6.1f}x"
        )

    mid = rows[10_000]
    lines.append(
        f"\n10k-pair acceptance: engine sketch path "
        f"{mid['speedup_sketch']:.1f}x over the seed loop "
        f"(materialized path {mid['speedup_materialize']:.1f}x)"
    )
    return "\n".join(lines), rows


def test_engine_batch_speedup(emit):
    text, rows = run_engine_batch_comparison()
    emit("engine_batch", text)

    for count, row in rows.items():
        # Sanity: everything produced estimates in sane time.
        assert row["loop"] > 0 and row["materialize"] > 0 and row["sketch"] > 0
    mid = rows[10_000]
    # The engine's list-free path carries the >= 10x acceptance bar; the
    # mode-matched materialized path must also win outright.
    assert mid["speedup_sketch"] >= 10.0
    assert mid["speedup_materialize"] >= 1.2


if __name__ == "__main__":
    text, _ = run_engine_batch_comparison()
    print(text)

"""Shared configuration for the figure/table reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper, prints the
series (visible with ``pytest -s``), persists them under
``benchmarks/results/``, and asserts the paper's qualitative shape.

Workload knobs (environment variables):

* ``REPRO_BENCH_MAX_EDGES`` — edge budget per synthesized dataset
  (default 150000; raise for fuller-scale runs).
* ``REPRO_BENCH_PAIRS`` — query pairs per (dataset, configuration) cell
  (default 60; the paper uses 100).
* ``REPRO_BENCH_TRIALS`` — repetitions for distribution experiments
  (default 400; the paper uses 1000).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class BenchConfig:
    max_edges: int
    num_pairs: int
    trials: int
    epsilon: float = 2.0
    seed: int = 20250622


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return int(raw)


@pytest.fixture(scope="session")
def config() -> BenchConfig:
    return BenchConfig(
        max_edges=_env_int("REPRO_BENCH_MAX_EDGES", 150_000),
        num_pairs=_env_int("REPRO_BENCH_PAIRS", 60),
        trials=_env_int("REPRO_BENCH_TRIALS", 400),
    )


@pytest.fixture(scope="session")
def emit():
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit

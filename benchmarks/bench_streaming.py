"""Incremental epoch rotation vs full redraw: the dirty-fraction sweep.

The streaming claim is concrete: on a million-vertex materialized
workload, absorbing a mutation burst that dirties 1% of the vertices
must rotate (CSR-splice apply + selective drop + redraw of exactly the
dirty views) at least **5x faster** than the full-redraw rotation it
replaces — because the untouched 99% keep their keyed streams and are
never drawn again. The sweep widens the dirty fraction to show where
the advantage erodes.

Every incremental step is also differentially checked against the
from-scratch keyed oracle on a sample of clean and dirty vertices, so
the speedup can't come from skipping work that mattered.

Run directly (``python benchmarks/bench_streaming.py``) or via pytest
(``pytest benchmarks/bench_streaming.py -s``). ``REPRO_BENCH_QUICK=1``
shrinks the graph for the CI smoke lane; every assertion still runs,
only the speedup floor is relaxed (tiny workloads time fixed overheads,
not the redraw they amortize).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.engine.bulkrr import keyed_bulk_randomized_response
from repro.graph.bipartite import Layer
from repro.graph.generators import random_bipartite
from repro.serving.cache import NoisyViewCache

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
if QUICK:
    N_UPPER, N_LOWER, N_EDGES = 50_000, 128, 200_000
else:
    N_UPPER, N_LOWER, N_EDGES = 1_000_000, 256, 4_000_000
EPSILON = 4.0  # keeps noisy rows short so the sweep times draws, not I/O
DIRTY_FRACTIONS = (0.01, 0.05, 0.20)
SEED = 20260808
SAMPLE = 64  # vertices differentially checked per incremental step
MIN_SPEEDUP = 2.0 if QUICK else 5.0  # floor applies to the 1% point


def _dirty_batch(graph, k, rng):
    """Toggle one edge per chosen upper vertex: k genuinely dirty rows."""
    chosen = rng.choice(graph.num_upper, size=k, replace=False)
    inserts, deletes = [], []
    for u in chosen:
        u = int(u)
        l = int(rng.integers(graph.num_lower))
        (deletes if graph.has_edge(u, l) else inserts).append((u, l))
    as_array = lambda ops: (
        np.array(ops, dtype=np.int64)
        if ops
        else np.empty((0, 2), dtype=np.int64)
    )
    return as_array(inserts), as_array(deletes), np.sort(chosen)


def _check_sample(cache, verts, rng):
    """Resident rows == the from-scratch keyed oracle on the live graph."""
    sample = np.sort(rng.choice(verts, size=min(SAMPLE, verts.size), replace=False))
    indptr, columns = keyed_bulk_randomized_response(
        cache.graph, cache.layer, sample, cache.epsilon,
        entropy=cache._entropy, epoch=cache.draw_epoch,
        versions=cache._versions[sample],
    )
    for i, v in enumerate(sample):
        np.testing.assert_array_equal(
            cache.view(int(v)), columns[indptr[i] : indptr[i + 1]]
        )


def run_streaming_bench() -> tuple[str, dict]:
    rng = np.random.default_rng(SEED)
    graph = random_bipartite(N_UPPER, N_LOWER, N_EDGES, rng=rng)
    cache = NoisyViewCache(
        graph, Layer.UPPER, EPSILON, max_entries=2 * N_UPPER,
        rng=np.random.default_rng(1),
    )
    verts = np.arange(N_UPPER, dtype=np.int64)
    cache.materialize_fresh(verts)

    # --- baseline: a full rotation redraws the whole working set ------
    start = time.perf_counter()
    cache.rotate()
    cache.materialize_fresh(verts)
    t_full = time.perf_counter() - start

    # --- the sweep: incremental rotations at growing dirty fractions --
    sweep = []
    for fraction in DIRTY_FRACTIONS:
        k = max(1, int(round(fraction * N_UPPER)))
        inserts, deletes, dirty = _dirty_batch(cache.graph, k, rng)
        cache.mutate(inserts=inserts, deletes=deletes)
        start = time.perf_counter()
        cache.rotate()
        # The rotation reports exactly what it dropped — redraw that.
        missing = cache.last_rotation["dirty_vertices"]
        cache.materialize_fresh(missing)
        t_incr = time.perf_counter() - start
        assert cache.last_rotation["incremental"]
        assert cache.last_rotation["dirty"] == dirty.size
        np.testing.assert_array_equal(missing, dirty)
        assert not np.any(~cache.vertex_cached_mask(verts))  # set is whole again
        _check_sample(cache, dirty, rng)  # redrawn rows match the oracle
        clean = np.setdiff1d(verts, dirty, assume_unique=True)
        _check_sample(cache, clean, rng)  # retained rows still match too
        sweep.append(
            {
                "fraction": fraction,
                "dirty": int(dirty.size),
                "t_incremental": t_incr,
                "speedup": t_full / t_incr if t_incr > 0 else float("inf"),
            }
        )

    rows = {
        "upper": N_UPPER,
        "lower": N_LOWER,
        "edges": N_EDGES,
        "epsilon": EPSILON,
        "t_full": t_full,
        "sweep": sweep,
        "min_speedup": MIN_SPEEDUP,
    }
    lines = [
        f"materialized working set of {N_UPPER:,} vertices "
        f"({N_LOWER} lower, {N_EDGES:,} edges), epsilon={EPSILON:g}"
        + (" [QUICK]" if QUICK else ""),
        "",
        f"full rotation  : {t_full:.3f}s (every view redrawn)",
    ]
    for entry in sweep:
        lines.append(
            f"{entry['fraction']:>5.0%} dirty    : "
            f"{entry['t_incremental']:.3f}s "
            f"({entry['dirty']:,} views redrawn, "
            f"{entry['speedup']:.1f}x vs full)"
        )
    lines.append(
        "differential   : redrawn and retained rows both match the "
        f"from-scratch keyed oracle ({SAMPLE} sampled per step)"
    )
    return "\n".join(lines), rows


def test_streaming_bench(emit):
    text, rows = run_streaming_bench()
    emit("streaming", text)
    one_percent = rows["sweep"][0]
    assert one_percent["fraction"] == 0.01
    assert one_percent["speedup"] >= rows["min_speedup"], (
        f"1% dirty rotation is only {one_percent['speedup']:.1f}x faster "
        f"than a full redraw (floor {rows['min_speedup']}x)"
    )
    # The sweep must be monotone in work: more dirt, more time.
    times = [entry["t_incremental"] for entry in rows["sweep"]]
    assert times[0] <= times[-1] * 1.5, (
        "incremental rotation cost does not scale with the dirty set: "
        f"{times}"
    )


if __name__ == "__main__":
    text, _ = run_streaming_bench()
    print(text)
